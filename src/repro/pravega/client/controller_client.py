"""Client-side stub for the controller: every call costs a network round
trip from the client host to the controller host."""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.common.keyspace import KeyRange
from repro.pravega.controller import Controller, SegmentLocation
from repro.pravega.model import StreamConfiguration
from repro.sim.core import SimFuture

__all__ = ["ControllerClient"]

_REQUEST_BYTES = 256


class ControllerClient:
    """Client-side controller stub; each call pays a network round trip."""
    def __init__(self, controller: Controller, client_host: str) -> None:
        self.controller = controller
        self.client_host = client_host

    def _roundtrip(self, operation: Callable[[], Any]) -> SimFuture:
        sim = self.controller.sim
        network = self.controller.network
        result = sim.future()

        def run():
            yield network.transfer(self.client_host, self.controller.host, _REQUEST_BYTES)
            yield sim.timeout(self.controller.config.request_processing_time)
            value = operation()
            if isinstance(value, SimFuture):
                value = yield value
            yield network.transfer(self.controller.host, self.client_host, _REQUEST_BYTES)
            return value

        proc = sim.process(run())
        proc.add_callback(
            lambda p: result.set_exception(p.exception)
            if p.exception is not None
            else result.set_result(p._value)
        )
        return result

    # ------------------------------------------------------------------
    def create_scope(self, scope: str) -> SimFuture:
        return self._roundtrip(lambda: self.controller.create_scope(scope))

    def create_stream(
        self, scope: str, stream: str, config: Optional[StreamConfiguration] = None
    ) -> SimFuture:
        return self._roundtrip(
            lambda: self.controller.create_stream(scope, stream, config)
        )

    def seal_stream(self, scope: str, stream: str) -> SimFuture:
        return self._roundtrip(lambda: self.controller.seal_stream(scope, stream))

    def delete_stream(self, scope: str, stream: str) -> SimFuture:
        return self._roundtrip(lambda: self.controller.delete_stream(scope, stream))

    def get_active_segments(self, scope: str, stream: str) -> SimFuture:
        """Resolves with List[SegmentLocation]."""
        return self._roundtrip(
            lambda: self.controller.get_active_segments(scope, stream)
        )

    def get_successors(self, scope: str, stream: str, segment_number: int) -> SimFuture:
        """Resolves with Dict[successor, List[predecessors]]."""
        return self._roundtrip(
            lambda: self.controller.get_successors(scope, stream, segment_number)
        )

    def get_location(self, scope: str, stream: str, segment_number: int) -> SimFuture:
        return self._roundtrip(
            lambda: self.controller.get_location(scope, stream, segment_number)
        )

    def head_segments(self, scope: str, stream: str) -> SimFuture:
        return self._roundtrip(lambda: self.controller.head_segments(scope, stream))

    def scale_stream(
        self,
        scope: str,
        stream: str,
        seal_segments: List[int],
        new_ranges: List[KeyRange],
    ) -> SimFuture:
        return self._roundtrip(
            lambda: self.controller.scale_stream(scope, stream, seal_segments, new_ranges)
        )

    def truncate_stream(self, scope: str, stream: str, cut: Dict[int, int]) -> SimFuture:
        return self._roundtrip(
            lambda: self.controller.truncate_stream(scope, stream, cut)
        )
