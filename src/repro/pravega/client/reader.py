"""The event stream reader (§3.3).

A reader pulls events from the segments its reader group assigned to it.
Reads are served by the segment store's read index: tail reads block
server-side until data arrives (low end-to-end latency, Fig. 8) and
historical reads transparently fetch from LTS (Fig. 12).  At the end of
a sealed segment the reader runs the successor protocol through the
reader group, which enforces the merge hold-back rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional

from repro.common.errors import ReaderError, SegmentError, StreamError
from repro.pravega.client.reader_group import ReaderGroup
from repro.pravega.client.serializers import (
    framed_size,
    unframe_events,
    unframe_fixed,
)
from repro.sim.core import SimFuture, Simulator
from repro.sim.resources import Store

__all__ = ["ReaderConfig", "EventBatch", "EventStreamReader"]


@dataclass(frozen=True)
class ReaderConfig:
    #: maximum bytes per segment read request
    read_size: int = 256 * 1024
    #: for synthetic (size-only) payloads: the fixed application event size
    fixed_event_size: Optional[int] = None
    #: how often an idle reader re-checks for acquirable segments (seconds)
    acquire_interval: float = 0.1


@dataclass(slots=True)
class EventBatch:
    """What one segment read yielded."""

    segment_number: int
    first_offset: int
    #: concrete events (real content mode); empty in synthetic mode
    events: List[bytes] = field(default_factory=list)
    #: number of events (both modes)
    event_count: int = 0
    #: framed bytes consumed from the segment
    byte_count: int = 0
    #: simulated time the data was received
    read_time: float = 0.0


class EventStreamReader:
    """One reader within a reader group."""

    def __init__(
        self,
        sim: Simulator,
        reader_id: str,
        group: ReaderGroup,
        stores: Dict[str, "SegmentStore"],  # noqa: F821 - avoid import cycle
        host: str,
        config: Optional[ReaderConfig] = None,
    ) -> None:
        self.sim = sim
        self.reader_id = reader_id
        self.group = group
        self._stores = stores
        self.host = host
        self.config = config or ReaderConfig()
        #: segment number -> (qualified name, store host)
        self._segments: Dict[int, tuple] = {}
        self._offsets: Dict[int, int] = {}
        #: partial frame bytes per segment (real content mode)
        self._remainders: Dict[int, bytes] = {}
        #: partial frame byte counts per segment (synthetic mode)
        self._synthetic_remainders: Dict[int, int] = {}
        self._round_robin: List[int] = []
        #: one outstanding read per segment: number -> (offset, future)
        self._outstanding: Dict[int, tuple] = {}
        #: per-segment completion callbacks, bound once per segment number
        self._completions: Dict[int, object] = {}
        #: completion queue of segment numbers with finished reads
        self._ready = Store(sim)
        self.events_read = 0
        self.bytes_read = 0
        self._joined = False

    # ------------------------------------------------------------------
    def join(self) -> SimFuture:
        def run():
            yield self.group.add_reader(self.reader_id)
            self._joined = True
            yield from self._acquire()

        return self.sim.process(run())

    def _acquire(self):
        acquired = yield self.group.acquire_segments(self.reader_id)
        for number, offset in acquired.items():
            location = yield self.group.controller.get_location(
                self.group.scope, self.group.stream, number
            )
            self._segments[number] = (location.qualified_name, location.store_host)
            self._offsets[number] = offset
            self._remainders[number] = b""
            self._round_robin.append(number)
        return acquired

    @property
    def assigned_segments(self) -> List[int]:
        return sorted(self._segments)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def read_next(self) -> SimFuture:
        """Read the next batch of events from any assigned segment.

        Keeps one outstanding read per assigned segment (tail reads block
        server-side until data arrives) and returns whichever completes
        first; when a segment ends, runs the successor protocol and moves
        on.  Resolves with an :class:`EventBatch`.
        """
        if not self._joined:
            raise ReaderError(f"{self.reader_id} has not joined the group")

        def run():
            segments = self._segments
            outstanding = self._outstanding
            completions = self._completions
            offsets = self._offsets
            stores = self._stores
            host = self.host
            read_size = self.config.read_size
            ready_get = self._ready.get
            while True:
                if not segments:
                    yield self.sim.timeout(self.config.acquire_interval)
                    yield from self._acquire()
                    continue
                # Ensure one outstanding read per assigned segment.
                for number, (qualified, store_host) in segments.items():
                    if number in outstanding:
                        continue
                    offset = offsets[number]
                    read = stores[store_host].rpc_read(
                        host, qualified, offset, read_size
                    )
                    outstanding[number] = (offset, read)
                    callback = completions.get(number)
                    if callback is None:
                        callback = completions[number] = partial(
                            self._note_ready, number
                        )
                    read.add_callback(callback)
                number = yield ready_get()
                if number not in outstanding:
                    continue  # stale completion (segment released)
                offset, fut = outstanding.pop(number)
                if number not in segments:
                    continue  # segment was released while the read was out
                try:
                    result = fut.value
                except (SegmentError, StreamError) as exc:
                    raise ReaderError(f"read segment {number}@{offset}: {exc}") from exc
                if result.end_of_segment:
                    yield from self._complete_segment(number)
                    continue
                batch = self._decode(number, offset, result.payload)
                offsets[number] = offset + result.payload.size
                if batch.event_count == 0:
                    # Only a partial frame arrived; keep reading.
                    continue
                self.events_read += batch.event_count
                self.bytes_read += batch.byte_count
                return batch

        return self.sim.process(run())

    def _note_ready(self, number: int, _future) -> None:
        self._ready.put(number)

    def _decode(self, number: int, offset: int, payload) -> EventBatch:
        batch = EventBatch(
            segment_number=number,
            first_offset=offset,
            read_time=self.sim.now,
            byte_count=payload.size,
        )
        if payload.content is not None:
            buffer = self._remainders.get(number, b"") + payload.content
            events, consumed = unframe_events(buffer)
            self._remainders[number] = buffer[consumed:]
            batch.events = events
            batch.event_count = len(events)
        else:
            if self.config.fixed_event_size is None:
                raise ReaderError(
                    "synthetic payloads need ReaderConfig.fixed_event_size"
                )
            leftover = self._synthetic_remainders.get(number, 0)
            total = leftover + payload.size
            count, consumed = unframe_fixed(total, self.config.fixed_event_size)
            self._synthetic_remainders[number] = total - consumed
            batch.event_count = count
        return batch

    def _complete_segment(self, number: int):
        """End of a sealed segment: run the successor protocol (§3.3)."""
        self._segments.pop(number, None)
        self._offsets.pop(number, None)
        self._remainders.pop(number, None)
        self._synthetic_remainders.pop(number, None)
        self._outstanding.pop(number, None)
        if number in self._round_robin:
            self._round_robin.remove(number)
        yield self.group.segment_completed(self.reader_id, number)
        yield from self._acquire()

    # ------------------------------------------------------------------
    def checkpoint_positions(self) -> SimFuture:
        """Persist current offsets into the group state."""

        def run():
            for number, offset in list(self._offsets.items()):
                yield self.group.update_position(self.reader_id, number, offset)

        return self.sim.process(run())

    def release_all(self) -> SimFuture:
        """Give every assigned segment back to the group."""

        def run():
            for number in list(self._segments):
                offset = self._offsets.get(number, 0)
                yield self.group.release_segment(self.reader_id, number, offset)
                self._segments.pop(number, None)
                self._offsets.pop(number, None)
                self._remainders.pop(number, None)
                self._synthetic_remainders.pop(number, None)
                pending = self._outstanding.pop(number, None)
                if pending is not None:
                    _, read = pending
                    # Cancel the parked server-side read so the container
                    # drops this reader from its tail wakeup list instead
                    # of pinning the payload until the next append.
                    interrupt = getattr(read, "interrupt", None)
                    if interrupt is not None and not read.done:
                        interrupt()
                if number in self._round_robin:
                    self._round_robin.remove(number)

        return self.sim.process(run())
