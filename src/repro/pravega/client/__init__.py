"""Pravega client libraries: writer, reader, reader groups, state
synchronizer, serializers (§2.1, §3)."""

from repro.pravega.client.controller_client import ControllerClient
from repro.pravega.client.reader import EventBatch, EventStreamReader, ReaderConfig
from repro.pravega.client.reader_group import ReaderGroup
from repro.pravega.client.serializers import (
    BytesSerializer,
    JsonSerializer,
    Serializer,
    UTF8StringSerializer,
)
from repro.pravega.client.state_synchronizer import StateSynchronizer
from repro.pravega.client.tables import KeyValueTable, TableEntry
from repro.pravega.client.writer import EventStreamWriter, WriterConfig

__all__ = [
    "KeyValueTable",
    "TableEntry",
    "ControllerClient",
    "EventStreamWriter",
    "WriterConfig",
    "EventStreamReader",
    "ReaderConfig",
    "EventBatch",
    "ReaderGroup",
    "StateSynchronizer",
    "Serializer",
    "UTF8StringSerializer",
    "JsonSerializer",
    "BytesSerializer",
]
