"""The event stream writer (§3.2, §4.1) with dynamic batching.

"Conversely to other systems that batch data by holding it on the client
and waiting to transmit it, the Pravega writer starts sending a batch
before it has sufficient data to fill it ...  the batch size is estimated
as the minimum between the defined maximum batch size (e.g., 1MB) and
half the server round trip time" — so the batching *window* adapts: at
low rates a batch closes after ~RTT/2 (microseconds of added latency),
at high rates it closes when the size bound fills.  No knobs to tune
(the contrast drawn in §5.3 with Kafka/Pulsar linger/batch-size knobs).

Exactly-once: each batch carries ⟨writer id, last event number⟩; the
segment store dedups via segment attributes, and on reconnection the
writer handshakes to learn the last persisted event number and resumes
from the correct event (§3.2).

Order: events with the same routing key always map to the same active
segment; when a scale event seals that segment, in-flight and queued
events re-route to the successors *after* observing the seal — appends
to successors never precede the seal (Fig. 2b).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.common.errors import (
    ContainerOfflineError,
    SegmentError,
    SegmentSealedError,
    WriterError,
)
from repro.common.hashing import routing_key_position
from repro.common.payload import Payload
from repro.pravega.client.controller_client import ControllerClient
from repro.pravega.client.serializers import (
    frame_event,
    frame_synthetic_event,
)
from repro.pravega.controller import SegmentLocation
from repro.sim.core import SimFuture, Simulator, all_of
from repro.sim.resources import FifoServer

__all__ = ["WriterConfig", "EventStreamWriter"]


@dataclass(frozen=True)
class WriterConfig:
    #: maximum serialized batch size (the paper's e.g. 1 MB)
    max_batch_size: int = 1024 * 1024
    #: in-flight batches per segment connection
    max_outstanding: int = 8
    #: initial RTT estimate before feedback arrives (seconds)
    initial_rtt: float = 1e-3
    #: client CPU cost per event (serialization/bookkeeping)
    per_event_cpu: float = 0.5e-6
    #: fixed client CPU per append request; the adaptive RTT/2 window grows
    #: batches under load, so this cost amortizes away (unlike fixed-linger
    #: clients whose per-partition batches stay small with random keys)
    per_request_cpu: float = 25e-6
    #: client CPU byte-copy bandwidth
    cpu_bandwidth: float = 2e9
    #: retries on transient (container offline) errors; backoff doubles
    #: per attempt so container recovery (WAL replay) has time to finish
    max_retries: int = 8


@dataclass(slots=True)
class _PendingEvent:
    payload: Payload
    event_count: int
    future: SimFuture
    enqueue_time: float
    routing_key: Optional[str]
    #: last event number assigned when the event was batched (-1 = never);
    #: lets the reconnect handshake tell durable events from lost ones
    assigned_number: int = -1
    #: root trace span ("pravega.write"), None when tracing is off
    span: Optional[object] = None


@dataclass(slots=True)
class _Batch:
    events: List[_PendingEvent] = field(default_factory=list)
    size: int = 0
    first_event_number: int = 0
    last_event_number: int = 0
    open_time: float = 0.0
    span: Optional[object] = None


class _SegmentWriter:
    """The per-segment outbound pipeline of an EventStreamWriter."""

    def __init__(self, parent: "EventStreamWriter", location: SegmentLocation) -> None:
        self.parent = parent
        self.location = location
        self.sim = parent.sim
        self.queue: Deque[_PendingEvent] = deque()
        self.next_event_number = 0
        self.outstanding = 0
        self.rtt_estimate = parent.config.initial_rtt
        self.sealed = False
        self.reconnecting = False
        self._sender_running = False
        self._inflight: Deque[_Batch] = deque()
        self._window_waiters: Deque[SimFuture] = deque()

    # ------------------------------------------------------------------
    def enqueue(self, event: _PendingEvent) -> None:
        self.queue.append(event)
        if not self._sender_running and not self.reconnecting:
            self._sender_running = True
            self.sim.process(self._sender_loop())

    def _release_window(self) -> None:
        while self._window_waiters and self.outstanding < self.parent.config.max_outstanding:
            waiter = self._window_waiters.popleft()
            if not waiter.done:
                waiter.set_result(None)

    def _batch_window(self) -> float:
        """How long to keep a batch open: half the observed RTT (§4.1)."""
        return self.rtt_estimate / 2.0

    def _sender_loop(self):
        config = self.parent.config
        try:
            while self.queue and not self.sealed and not self.reconnecting:
                # Start a batch with everything immediately available.
                batch = _Batch(open_time=self.sim.now)
                self._fill(batch)
                # Keep the batch open for the adaptive window: the server is
                # already collecting it; we model the window client-side.
                if batch.size < config.max_batch_size:
                    yield self._batch_window()
                    self._fill(batch)
                # Respect the connection's outstanding-batch window.
                while self.outstanding >= config.max_outstanding and not self.sealed:
                    waiter = self.sim.future()
                    self._window_waiters.append(waiter)
                    yield waiter
                if self.sealed:
                    for event in batch.events:
                        self.queue.appendleft(event)
                    return
                self._dispatch(batch)
        finally:
            self._sender_running = False
            if (self.queue or self._inflight) and self.sealed:
                self.parent._reroute(self)

    def _fill(self, batch: _Batch) -> None:
        config = self.parent.config
        while self.queue and batch.size < config.max_batch_size:
            event = self.queue.popleft()
            batch.events.append(event)
            batch.size += event.payload.size
            if len(batch.events) == 1:
                batch.first_event_number = self.next_event_number + 1
            self.next_event_number += event.event_count
            event.assigned_number = self.next_event_number
        batch.last_event_number = self.next_event_number

    def _dispatch(self, batch: _Batch) -> None:
        if not batch.events:
            return
        self.outstanding += 1
        self._inflight.append(batch)
        self.sim.process(self._send(batch))

    def _send(self, batch: _Batch):
        parent = self.parent
        config = parent.config
        event_count = sum(e.event_count for e in batch.events)
        first_span = batch.events[0].span if batch.events else None
        rpc_span = None
        if first_span is not None:
            batch.span = first_span.child(
                "pravega.batch",
                start=batch.open_time,
                bytes=batch.size,
                events=event_count,
            )
            rpc_span = batch.span.child(
                "segmentstore.rpc_append",
                actor=self.location.store_host,
                bytes=batch.size,
                segment=self.location.segment_number,
            )
        # Client CPU: serialization + copy, serialized on the writer's core.
        cpu_time = (
            config.per_request_cpu
            + event_count * config.per_event_cpu
            + batch.size / config.cpu_bandwidth
        )
        yield parent._cpu.submit(cpu_time)
        payload = Payload.concat([e.payload for e in batch.events])
        store = parent._stores[self.location.store_host]
        sent_at = self.sim.now
        try:
            result = yield store.rpc_append(
                parent.host,
                self.location.qualified_name,
                payload,
                writer_id=parent.writer_id,
                event_number=batch.last_event_number,
                event_count=event_count,
                span=rpc_span,
            )
        except SegmentSealedError:
            if batch.span is not None:
                batch.span.annotate("segment-sealed")
                batch.span.finish()
            self.sealed = True
            if batch in self._inflight:
                self._inflight.remove(batch)
            self.outstanding -= 1
            self._release_window()
            # Put the batch's events back at the front, in order, and
            # re-route everything to the successors.
            for event in reversed(batch.events):
                self.queue.appendleft(event)
            parent._reroute(self)
            return
        except (ContainerOfflineError, SegmentError) as exc:
            if batch.span is not None:
                batch.span.annotate("rpc-error", error=type(exc).__name__)
                batch.span.finish()
            if batch in self._inflight:
                self._inflight.remove(batch)
            self.outstanding -= 1
            self._release_window()
            # Requeue in order; a single reconnect drains everything.
            for event in reversed(batch.events):
                self.queue.appendleft(event)
            parent._schedule_reconnect(self, exc)
            return
        rtt = self.sim.now - sent_at
        self.rtt_estimate += 0.3 * (rtt - self.rtt_estimate)
        if batch in self._inflight:
            self._inflight.remove(batch)
        self.outstanding -= 1
        self._release_window()
        parent.events_written += event_count
        parent.bytes_written += batch.size
        if batch.span is not None:
            if rpc_span is not None:
                batch.span.absorb(rpc_span)
            batch.span.finish()
            for event in batch.events:
                if event.span is not None:
                    event.span.absorb(batch.span)
        # Batch-level ack fan-out: one shared (read-only) result dict for
        # the whole batch instead of an allocation per event.
        ack = {"segment": self.location.segment_number, "duplicate": result.duplicate}
        for event in batch.events:
            if not event.future._done:
                event.future.set_result(ack)

    def drain_pending(self) -> List[_PendingEvent]:
        """All not-yet-acknowledged events in original order (re-route)."""
        pending: List[_PendingEvent] = []
        for batch in self._inflight:
            pending.extend(batch.events)
        self._inflight.clear()
        pending.extend(self.queue)
        self.queue.clear()
        return pending


class EventStreamWriter:
    """Writes events to a stream with per-routing-key ordering."""

    _writer_counter = 0

    def __init__(
        self,
        sim: Simulator,
        controller: ControllerClient,
        stores: Dict[str, "SegmentStore"],  # noqa: F821 - avoid import cycle
        scope: str,
        stream: str,
        host: str,
        config: Optional[WriterConfig] = None,
        writer_id: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.controller = controller
        self._stores = stores
        self.scope = scope
        self.stream = stream
        self.host = host
        self.config = config or WriterConfig()
        if writer_id is None:
            EventStreamWriter._writer_counter += 1
            writer_id = f"writer-{EventStreamWriter._writer_counter}"
        self.writer_id = writer_id
        self._segment_writers: Dict[int, _SegmentWriter] = {}
        self._locations: List[SegmentLocation] = []
        #: routing key -> covering location; cleared on every refresh
        self._key_cache: Dict[str, SegmentLocation] = {}
        self._ready: Optional[SimFuture] = None
        self._cpu = FifoServer(sim, name=f"cpu:{writer_id}")
        self._round_robin = 0
        self.events_written = 0
        self.bytes_written = 0
        self._unacked = 0
        #: optional repro.obs.Tracer; None keeps the write path untraced
        self.tracer = None
        #: extra attributes stamped on every root write span (e.g. the
        #: bench harness sets {"tenant": name} for per-tenant attribution)
        self.span_attrs: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Segment discovery / routing
    # ------------------------------------------------------------------
    def _ensure_ready(self) -> SimFuture:
        if self._ready is None:
            self._ready = self.sim.process(self._refresh_segments())
        return self._ready

    def _refresh_segments(self):
        locations = yield self.controller.get_active_segments(self.scope, self.stream)
        self._locations = sorted(locations, key=lambda l: l.key_range.low)
        self._key_cache.clear()
        for location in self._locations:
            if location.segment_number not in self._segment_writers:
                self._segment_writers[location.segment_number] = _SegmentWriter(
                    self, location
                )

    def _segment_for_key(self, routing_key: Optional[str]) -> SegmentLocation:
        if not self._locations:
            raise WriterError("writer not initialized")
        if routing_key is None:
            # No routing key: spread events round-robin (no order guarantee).
            self._round_robin = (self._round_robin + 1) % len(self._locations)
            return self._locations[self._round_robin]
        cached = self._key_cache.get(routing_key)
        if cached is not None:
            return cached
        position = routing_key_position(routing_key)
        for location in self._locations:
            if location.key_range.contains(position):
                self._key_cache[routing_key] = location
                return location
        raise WriterError(f"no active segment covers position {position}")

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def write_event(self, data: bytes, routing_key: Optional[str] = None) -> SimFuture:
        """Write one event; resolves when the event is durable."""
        return self._write(frame_event(data), 1, routing_key)

    def write_synthetic_events(
        self, count: int, event_size: int, routing_key: Optional[str] = None
    ) -> SimFuture:
        """Benchmark fast path: ``count`` fixed-size events as one unit.

        The group travels through the same batching, dedup and routing
        machinery as individual events but costs O(1) Python objects.
        With no routing key, events round-robin across the active
        segments — so the group is split into per-segment shares, exactly
        like ``count`` individual keyless events would be.
        """
        framed = frame_synthetic_event(event_size).size
        if routing_key is not None or count == 1:
            total = count * framed
            if total <= self.config.max_batch_size or count == 1:
                return self._write(Payload.synthetic(total), count, routing_key)
            # Oversized bulk group: split so batch-size limits hold.
            per_piece = max(self.config.max_batch_size // framed, 1)
            pending = []
            remaining = count
            while remaining > 0:
                share = min(per_piece, remaining)
                remaining -= share
                pending.append(
                    self._write(Payload.synthetic(share * framed), share, routing_key)
                )
            return all_of(self.sim, pending)

        def run():
            yield self._ensure_ready()
            segments = max(len(self._locations), 1)
            base, remainder = divmod(count, segments)
            pending = []
            for i in range(segments):
                share = base + (1 if i < remainder else 0)
                if share <= 0:
                    continue
                pending.append(
                    self._write(Payload.synthetic(share * framed), share, None)
                )
            yield all_of(self.sim, pending)

        return self.sim.process(run())

    def _write(
        self, payload: Payload, event_count: int, routing_key: Optional[str]
    ) -> SimFuture:
        fut = self.sim.future()
        span = None
        if self.tracer is not None:
            span = self.tracer.span(
                "pravega.write",
                actor=self.writer_id,
                bytes=payload.size,
                events=event_count,
                **self.span_attrs,
            )
            if span is not None:
                fut.add_callback(lambda f, s=span: s.finish())
        event = _PendingEvent(
            payload, event_count, fut, self.sim.now, routing_key, span=span
        )
        self._unacked += 1
        fut.add_callback(self._on_acked)

        def run():
            yield self._ensure_ready()
            location = self._segment_for_key(routing_key)
            writer = self._segment_writers[location.segment_number]
            if writer.sealed:
                yield from self._refresh_segments()
                location = self._segment_for_key(routing_key)
                writer = self._segment_writers[location.segment_number]
            writer.enqueue(event)

        self.sim.process(run())
        return fut

    def _on_acked(self, fut: SimFuture) -> None:
        self._unacked -= 1

    def flush(self) -> SimFuture:
        """Resolves when every previously written event is acknowledged."""

        def run():
            while self._unacked > 0:
                yield 0.001

        return self.sim.process(run())

    # ------------------------------------------------------------------
    # Scale / failure handling
    # ------------------------------------------------------------------
    def _reroute(self, segment_writer: _SegmentWriter) -> None:
        """A segment was sealed: move its pending events to the successors
        (which the controller guarantees exist before the seal, Fig. 2b)."""
        pending = segment_writer.drain_pending()
        if not pending:
            return

        def run():
            # The controller activates the new epoch *after* sealing the old
            # segments (Fig. 2b); a refresh can race ahead of step 3, so
            # retry until the successors become visible.
            sealed_number = segment_writer.location.segment_number
            for attempt in range(20):
                yield self._refresh_wrapper()
                if all(l.segment_number != sealed_number for l in self._locations):
                    break
                yield self.sim.timeout(0.005 * (attempt + 1))
            for event in pending:
                location = self._segment_for_key(event.routing_key)
                target = self._segment_writers[location.segment_number]
                if target is segment_writer:
                    event.future.set_exception(
                        WriterError("sealed segment still active after refresh")
                    )
                    continue
                target.enqueue(event)

        self.sim.process(run())

    def _refresh_wrapper(self):
        return self.sim.process(self._refresh_segments())

    def _schedule_reconnect(self, segment_writer: _SegmentWriter, error: Exception) -> None:
        """Start (at most one) reconnection for the segment writer."""
        if segment_writer.reconnecting:
            return
        segment_writer.reconnecting = True
        self.sim.process(self._reconnect(segment_writer, error))

    def _reconnect(self, segment_writer: _SegmentWriter, error: Exception):
        """Reconnection handshake (§3.2): wait for every in-flight batch
        to resolve, ask the store for the last event number persisted for
        this writer id, then resend exactly the events the store never
        made durable."""
        # Let all outstanding batches finish failing (they requeue their
        # events in order).
        while segment_writer.outstanding > 0:
            yield self.sim.timeout(0.005)
        for attempt in range(self.config.max_retries):
            yield self.sim.timeout(0.02 * (2**attempt))
            yield self._refresh_wrapper()
            location = next(
                (
                    l
                    for l in self._locations
                    if l.segment_number == segment_writer.location.segment_number
                ),
                None,
            )
            if location is None:
                # Segment no longer active (scaled away while we were down).
                for event in segment_writer.drain_pending():
                    target_location = self._segment_for_key(event.routing_key)
                    self._segment_writers[target_location.segment_number].enqueue(event)
                return
            store = self._stores[location.store_host]
            try:
                last_number = yield store.rpc_get_attribute(
                    self.host, location.qualified_name, self.writer_id
                )
            except (ContainerOfflineError, SegmentError):
                continue
            # From here to the end of the loop body there are no yields:
            # the drain + writer replacement is atomic in simulated time,
            # so no event can slip into the retired writer.
            events = segment_writer.drain_pending()
            writer = _SegmentWriter(self, location)
            writer.next_event_number = max(last_number, 0)
            self._segment_writers[location.segment_number] = writer
            # Events the store already persisted are acknowledged
            # (duplicates of durable data); the rest resend and — because
            # order and counts are preserved — receive exactly their
            # original event numbers.
            for event in events:
                if 0 <= event.assigned_number <= last_number:
                    if not event.future.done:
                        event.future.set_result(
                            {
                                "segment": location.segment_number,
                                "duplicate": True,
                            }
                        )
                else:
                    writer.enqueue(event)
            return
        for event in segment_writer.drain_pending():
            if not event.future.done:
                event.future.set_exception(
                    WriterError(f"reconnect failed after retries: {error}")
                )
