"""Event (de)serialization and wire framing.

"Applications make sense of events using (de)serializers as internally
Pravega does not keep the notion of events (i.e., Pravega does not
internally track event boundaries)" (§2.1).  The client frames each
serialized event with a small header; the segment store only ever sees
bytes.

Two framing modes exist, matching the :class:`~repro.common.payload.Payload`
duality: real content uses an 8-byte length prefix and round-trips exactly;
synthetic (size-only) events carry just their framed size, and fixed-size
deserialization recovers event boundaries arithmetically — which is what
the benchmark workloads (fixed event sizes, as in OpenMessaging Benchmark)
need.
"""

from __future__ import annotations

import json
import struct
from typing import Any, List, Tuple

from repro.common.errors import ReproError
from repro.common.payload import Payload

__all__ = [
    "EVENT_HEADER_SIZE",
    "Serializer",
    "UTF8StringSerializer",
    "JsonSerializer",
    "BytesSerializer",
    "frame_event",
    "frame_synthetic_event",
    "unframe_events",
    "framed_size",
]

EVENT_HEADER_SIZE = 8


class Serializer:
    """Application object <-> bytes."""

    def serialize(self, value: Any) -> bytes:
        raise NotImplementedError

    def deserialize(self, data: bytes) -> Any:
        raise NotImplementedError


class UTF8StringSerializer(Serializer):
    """str <-> UTF-8 bytes."""
    def serialize(self, value: str) -> bytes:
        return value.encode("utf-8")

    def deserialize(self, data: bytes) -> str:
        return data.decode("utf-8")


class JsonSerializer(Serializer):
    """JSON-serializable objects <-> canonical (sorted-keys) JSON bytes."""
    def serialize(self, value: Any) -> bytes:
        return json.dumps(value, sort_keys=True).encode("utf-8")

    def deserialize(self, data: bytes) -> Any:
        return json.loads(data.decode("utf-8"))


class BytesSerializer(Serializer):
    """Pass-through bytes serializer."""
    def serialize(self, value: bytes) -> bytes:
        return bytes(value)

    def deserialize(self, data: bytes) -> bytes:
        return bytes(data)


def framed_size(event_bytes: int) -> int:
    return EVENT_HEADER_SIZE + event_bytes


def frame_event(data: bytes) -> Payload:
    """Length-prefix framing for real event content."""
    return Payload.of(struct.pack(">Q", len(data)) + data)


def frame_synthetic_event(event_bytes: int) -> Payload:
    """Framed synthetic event of ``event_bytes`` application bytes."""
    return Payload.synthetic(framed_size(event_bytes))


def unframe_events(buffer: bytes) -> Tuple[List[bytes], int]:
    """Split a real byte buffer into complete events.

    Returns (events, consumed_bytes); a trailing partial frame is left
    unconsumed for the caller to buffer.
    """
    events: List[bytes] = []
    position = 0
    while position + EVENT_HEADER_SIZE <= len(buffer):
        (length,) = struct.unpack_from(">Q", buffer, position)
        end = position + EVENT_HEADER_SIZE + length
        if end > len(buffer):
            break
        events.append(buffer[position + EVENT_HEADER_SIZE : end])
        position = end
    return events, position


def unframe_fixed(size_bytes: int, event_size: int) -> Tuple[int, int]:
    """Event boundaries for synthetic fixed-size events.

    Returns (event_count, consumed_bytes) for a run of ``size_bytes`` of
    framed events each ``framed_size(event_size)`` long.
    """
    framed = framed_size(event_size)
    if framed <= 0:
        raise ReproError("event size must be positive")
    count = size_bytes // framed
    return count, count * framed
