"""Key-value tables: the client API built on top of segments (§2.2).

"Controller instances maintain the stream metadata (which is stored in
Pravega itself via the key-value API built on top of streams)" — the same
API is public: applications get durable, replicated key-value tables with
per-key conditional updates and multi-key transactions (§4.3: "All LTS
metadata operations are performed using conditional updates and using
transactions to update multiple keys at once").

A table is backed by one table segment per key-space partition; keys are
hashed to partitions, so tables scale like streams do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import ConditionalUpdateError, StreamError
from repro.common.hashing import stable_hash64
from repro.sim.core import SimFuture, Simulator

__all__ = ["TableEntry", "KeyValueTable"]


@dataclass(frozen=True)
class TableEntry:
    """A versioned table value; ``version`` feeds conditional updates."""

    key: str
    value: Any
    version: int


class KeyValueTable:
    """Client handle on a (possibly partitioned) key-value table."""

    def __init__(
        self,
        sim: Simulator,
        stores: Dict[str, "SegmentStore"],  # noqa: F821 - avoid import cycle
        store_for_segment,
        scope: str,
        name: str,
        host: str,
        partitions: int = 1,
    ) -> None:
        if partitions < 1:
            raise StreamError("a table needs at least one partition")
        self.sim = sim
        self._stores = stores
        self._store_for_segment = store_for_segment
        self.scope = scope
        self.name = name
        self.host = host
        self.partitions = partitions

    # ------------------------------------------------------------------
    def _segment_for(self, key: str) -> str:
        partition = stable_hash64(key) % self.partitions
        return f"{self.scope}/_tables/{self.name}/{partition}"

    def _segments(self) -> List[str]:
        return [
            f"{self.scope}/_tables/{self.name}/{p}" for p in range(self.partitions)
        ]

    def create(self) -> SimFuture:
        """Create the backing table segments (idempotent)."""

        def run():
            from repro.common.errors import SegmentExistsError

            for segment in self._segments():
                store = self._store_for_segment(segment)
                try:
                    yield store.rpc_create_segment(self.host, segment, is_table=True)
                except SegmentExistsError:
                    pass

        return self.sim.process(run())

    # ------------------------------------------------------------------
    def put(self, key: str, value: Any, expected_version: Optional[int] = None) -> SimFuture:
        """Insert/update one key.

        ``expected_version=None`` is unconditional; ``-1`` requires the key
        to be absent; otherwise the stored version must match.  Resolves
        with the new version; fails with ConditionalUpdateError on a
        version mismatch.
        """
        segment = self._segment_for(key)
        store = self._store_for_segment(segment)

        def run():
            versions = yield store.rpc_table_update(
                self.host, segment, {key: (value, expected_version)}
            )
            return versions[key]

        return self.sim.process(run())

    def get(self, key: str) -> SimFuture:
        """Resolves with a :class:`TableEntry` or None if absent."""
        segment = self._segment_for(key)
        store = self._store_for_segment(segment)

        def run():
            entries = yield store.rpc_table_get(self.host, segment, [key])
            if key not in entries:
                return None
            value, version = entries[key]
            return TableEntry(key, value, version)

        return self.sim.process(run())

    def remove(self, key: str, expected_version: Optional[int] = None) -> SimFuture:
        """Delete one key (conditionally when a version is given)."""
        segment = self._segment_for(key)
        store = self._store_for_segment(segment)

        def run():
            yield store.rpc_table_update(
                self.host, segment, {key: (None, expected_version)}
            )

        return self.sim.process(run())

    # ------------------------------------------------------------------
    def transact(
        self, updates: Dict[str, Tuple[Any, Optional[int]]]
    ) -> SimFuture:
        """Atomically apply conditional updates to multiple keys (§4.3).

        All keys must hash to the same table partition — cross-partition
        transactions are rejected (as in Pravega, where a transaction is
        scoped to one table segment).  Resolves with {key: new version}.
        """
        segments = {self._segment_for(key) for key in updates}
        if len(segments) != 1:
            fut = self.sim.future()
            fut.set_exception(
                ConditionalUpdateError(
                    "multi-key transactions must target one table partition; "
                    f"got keys spanning {len(segments)} partitions"
                )
            )
            return fut
        segment = segments.pop()
        store = self._store_for_segment(segment)
        return store.rpc_table_update(self.host, segment, dict(updates))

    def keys(self) -> SimFuture:
        """Resolves with all keys across the table's partitions."""

        def run():
            found: List[str] = []
            for segment in self._segments():
                store = self._store_for_segment(segment)
                container = store.container_for(segment)
                found.extend(container.table_keys(segment))
                yield self.sim.timeout(0.0)
            return sorted(found)

        return self.sim.process(run())
