"""Stream and segment data model (§2.1).

Streams are durable, elastic, append-only, unbounded sequences of bytes
organized into scopes.  Internally a stream is divided into segments —
shards of the stream's routing-key space — and the set of *active*
segments changes over time through scale events.  The controller tracks
segments in *epochs*: each scale event seals some segments and creates
successors whose key ranges exactly partition the sealed ranges.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.keyspace import KeyRange

__all__ = [
    "ScaleType",
    "ScalingPolicy",
    "RetentionType",
    "RetentionPolicy",
    "StreamConfiguration",
    "SegmentRecord",
    "EpochRecord",
    "segment_qualified_name",
    "StreamCut",
]


class ScaleType(enum.Enum):
    """How a stream scales: fixed parallelism or rate-driven (§2.1)."""
    FIXED = "fixed"
    BY_RATE_IN_EVENTS_PER_SEC = "events_rate"
    BY_RATE_IN_BYTES_PER_SEC = "bytes_rate"


@dataclass(frozen=True)
class ScalingPolicy:
    """Auto-scaling policy of a stream (§2.1, §3.1).

    ``target_rate`` is events/s or bytes/s per segment depending on
    ``scale_type``; ``scale_factor`` is how many successors a hot segment
    splits into; ``min_segments`` bounds scale-down.
    """

    scale_type: ScaleType = ScaleType.FIXED
    target_rate: float = 0.0
    scale_factor: int = 2
    min_segments: int = 1

    @classmethod
    def fixed(cls, num_segments: int) -> "ScalingPolicy":
        return cls(ScaleType.FIXED, 0.0, 2, num_segments)

    @classmethod
    def by_event_rate(
        cls, events_per_sec: float, scale_factor: int = 2, min_segments: int = 1
    ) -> "ScalingPolicy":
        return cls(
            ScaleType.BY_RATE_IN_EVENTS_PER_SEC, events_per_sec, scale_factor, min_segments
        )

    @classmethod
    def by_byte_rate(
        cls, bytes_per_sec: float, scale_factor: int = 2, min_segments: int = 1
    ) -> "ScalingPolicy":
        return cls(
            ScaleType.BY_RATE_IN_BYTES_PER_SEC, bytes_per_sec, scale_factor, min_segments
        )


class RetentionType(enum.Enum):
    """What bounds retained data: nothing, total size, or age (§2.1)."""
    NONE = "none"
    SIZE = "size"
    TIME = "time"


@dataclass(frozen=True)
class RetentionPolicy:
    """Automatic stream truncation policy (§2.1)."""

    retention_type: RetentionType = RetentionType.NONE
    #: bytes (SIZE) or seconds (TIME) to retain
    limit: float = 0.0

    @classmethod
    def none(cls) -> "RetentionPolicy":
        return cls(RetentionType.NONE, 0.0)

    @classmethod
    def by_size(cls, max_bytes: int) -> "RetentionPolicy":
        return cls(RetentionType.SIZE, float(max_bytes))

    @classmethod
    def by_time(cls, max_seconds: float) -> "RetentionPolicy":
        return cls(RetentionType.TIME, max_seconds)


@dataclass(frozen=True)
class StreamConfiguration:
    scaling: ScalingPolicy = field(default_factory=lambda: ScalingPolicy.fixed(1))
    retention: RetentionPolicy = field(default_factory=RetentionPolicy.none)


def segment_qualified_name(scope: str, stream: str, segment_number: int) -> str:
    """The globally unique name a segment store identifies a segment by."""
    return f"{scope}/{stream}/{segment_number}"


@dataclass
class SegmentRecord:
    """Controller-side metadata for one stream segment."""

    segment_number: int
    key_range: KeyRange
    #: epoch in which the segment was created
    creation_epoch: int
    #: simulated time of creation
    creation_time: float = 0.0
    sealed: bool = False
    #: segment numbers this segment replaced (empty for epoch-0 segments)
    predecessors: List[int] = field(default_factory=list)
    #: segment numbers that replaced this segment (set when sealed by scale)
    successors: List[int] = field(default_factory=list)

    def qualified_name(self, scope: str, stream: str) -> str:
        return segment_qualified_name(scope, stream, self.segment_number)


@dataclass
class EpochRecord:
    """One scaling epoch: the set of active segments between scale events."""

    epoch: int
    active_segments: List[int]
    start_time: float = 0.0


@dataclass(frozen=True)
class StreamCut:
    """A consistent position in a stream: segment number -> offset."""

    positions: tuple  # tuple of (segment_number, offset) pairs, sorted

    @classmethod
    def of(cls, positions: Dict[int, int]) -> "StreamCut":
        return cls(tuple(sorted(positions.items())))

    def offset_for(self, segment_number: int) -> Optional[int]:
        for number, offset in self.positions:
            if number == segment_number:
                return offset
        return None
