"""The storage writer: integrated tiering to LTS (§4.3).

"The storage writer is the component in charge of de-multiplexing the
operations written to WAL, grouping them by segment, and applying them in
LTS.  To maximize throughput, it buffers small appends into larger writes
to LTS.  Once the storage writer flushes a set of operations to LTS, it
notifies the segment container that the WAL log can be truncated up to
that point."

Storage tiering is *integrated into the write path*: "If LTS is not
available or is temporarily slow, Pravega can throttle writers to prevent
backlogs of data from growing indefinitely" — the mechanism behind the
single-segment 10 KB result of Fig. 7a (writers capped at LTS bandwidth)
and, by contrast, Pulsar's unbounded offload backlog in Fig. 12.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.common.errors import StorageError
from repro.common.payload import Payload
from repro.lts.base import LongTermStorage
from repro.sim.core import SimFuture, Simulator

__all__ = ["StorageWriterConfig", "ChunkRecord", "StorageWriter"]


@dataclass(frozen=True)
class StorageWriterConfig:
    #: flush a segment's buffer once it holds this many bytes
    flush_threshold: int = 4 * 1024 * 1024
    #: ... or once its oldest byte is this old (seconds)
    flush_timeout: float = 0.5
    #: throttle ingestion above this many unflushed bytes (high watermark)
    backlog_high_watermark: int = 64 * 1024 * 1024
    #: release throttled writers below this backlog (low watermark)
    backlog_low_watermark: int = 32 * 1024 * 1024


@dataclass(frozen=True)
class ChunkRecord:
    """LTS chunk metadata: a contiguous range of segment bytes (§4.3)."""

    chunk_name: str
    start_offset: int
    length: int

    @property
    def end_offset(self) -> int:
        return self.start_offset + self.length


@dataclass
class _PendingData:
    """Unflushed, WAL-acked appends of one segment."""

    start_offset: int = 0
    pieces: List[Payload] = field(default_factory=list)
    size: int = 0
    #: WAL sequence numbers covered by this buffer
    sequences: List[int] = field(default_factory=list)
    oldest_time: float = 0.0
    flush_in_progress: bool = False


class StorageWriter:
    """Per-container tiering engine."""

    def __init__(
        self,
        sim: Simulator,
        container_id: int,
        lts: LongTermStorage,
        config: Optional[StorageWriterConfig] = None,
        faults=None,
    ) -> None:
        self.sim = sim
        self.container_id = container_id
        self.lts = lts
        self.config = config or StorageWriterConfig()
        #: fault-injection hook (repro.faults.FaultEngine); unwired by default
        self.faults = faults
        #: optional repro.obs.Tracer; traces LTS chunk writes when set
        self.tracer = None
        self._pending: Dict[str, _PendingData] = {}
        #: segments with a flush loop currently running (one per segment)
        self._flushing: set[str] = set()
        #: flushed-to offset per segment (persisted via container checkpoints)
        self.chunks: Dict[str, List[ChunkRecord]] = {}
        self.storage_length: Dict[str, int] = {}
        #: sealed-in-storage marker per segment
        self._sealed: Dict[str, bool] = {}
        self._throttle_waiters: Deque[SimFuture] = deque()
        #: outstanding WAL sequences not yet flushed (for truncation)
        self._outstanding: Dict[int, bool] = {}
        self.on_flush: Callable[[str, int], None] = lambda segment, offset: None
        self.on_truncation_candidate: Callable[[int], None] = lambda seq: None
        #: extra ingest backlog to count against the watermarks (bytes the
        #: container has admitted to the WAL but not yet handed to us)
        self.external_backlog_provider: Callable[[], int] = lambda: 0
        self.chunks_written = 0
        self.bytes_flushed = 0
        self._running = True
        sim.register_fluid(self)

    # ------------------------------------------------------------------
    # Ingest side (called by the container when append ops are applied)
    # ------------------------------------------------------------------
    def track_segment(self, segment: str, storage_length: int = 0) -> None:
        self.chunks.setdefault(segment, [])
        self.storage_length.setdefault(segment, storage_length)

    def add(self, segment: str, offset: int, payload: Payload, sequence: int) -> None:
        """Buffer a WAL-acked append for flushing to LTS."""
        self.track_segment(segment)
        pending = self._pending.get(segment)
        if pending is None:
            pending = _PendingData(start_offset=offset, oldest_time=self.sim.now)
            self._pending[segment] = pending
            self.sim.process(self._age_timer(segment, pending))
        pending.pieces.append(payload)
        pending.size += payload.size
        pending.sequences.append(sequence)
        self._outstanding[sequence] = True
        if pending.size >= self.config.flush_threshold:
            self._start_flush(segment)

    def note_non_append(self, sequence: int) -> None:
        """Non-append operations need no LTS flush; they never block truncation."""
        # Intentionally not tracked in _outstanding.

    @property
    def backlog_bytes(self) -> int:
        return sum(p.size for p in self._pending.values())

    @property
    def total_backlog_bytes(self) -> int:
        return self.backlog_bytes + self.external_backlog_provider()

    @property
    def throttled(self) -> bool:
        return self.total_backlog_bytes >= self.config.backlog_high_watermark

    def admission_gate(self) -> SimFuture:
        """A future that resolves when ingestion may proceed.

        Resolves immediately below the high watermark; otherwise the caller
        (the container's append admission) waits until the backlog drains
        below the low watermark — this is writer throttling (§4.3).
        """
        fut = self.sim.future()
        if not self.throttled:
            fut.set_result(None)
        else:
            self._throttle_waiters.append(fut)
        return fut

    # ------------------------------------------------------------------
    # Fluid-mode protocol (repro.sim.fluid)
    # ------------------------------------------------------------------
    def fluid_snapshot(self) -> tuple:
        return (
            float(self.bytes_flushed),
            float(self.chunks_written),
            float(self.total_backlog_bytes),
        )

    def fluid_advance(self, dt: float, rates) -> None:
        # Flush counters extrapolate; the backlog is live state owned by
        # the flush processes (which keep draining it) and is left alone.
        self.bytes_flushed += int(round(rates[0] * dt))
        self.chunks_written += int(round(rates[1] * dt))

    def release_check(self) -> None:
        """Re-evaluate the throttle gate (called when any backlog shrinks)."""
        self._release_throttled()

    def _release_throttled(self) -> None:
        if self.total_backlog_bytes <= self.config.backlog_low_watermark:
            while self._throttle_waiters:
                self._throttle_waiters.popleft().set_result(None)

    # ------------------------------------------------------------------
    # Flush side
    # ------------------------------------------------------------------
    def _age_timer(self, segment: str, pending: _PendingData):
        yield self.sim.timeout(self.config.flush_timeout)
        if self._pending.get(segment) is pending:
            self._start_flush(segment)

    def _start_flush(self, segment: str) -> None:
        if segment in self._flushing or not self._running:
            return
        if segment not in self._pending:
            return
        self._flushing.add(segment)
        self.sim.process(self._flush_loop(segment))

    def _flush_loop(self, segment: str):
        """Write the segment's buffered data to LTS as chunks, repeatedly,
        until the buffer drains or falls below the threshold while young.
        One flush loop at a time per segment (chunk offsets must stay
        sequential); chunks of different segments flush in parallel."""
        try:
            while True:
                pending = self._pending.pop(segment, None)
                if pending is None or pending.size == 0:
                    return
                # The buffer was swapped out: appends arriving during the
                # flush accumulate into a fresh buffer.
                payload = Payload.concat(pending.pieces)
                chunk = ChunkRecord(
                    chunk_name=f"{segment}#chunk-{pending.start_offset}",
                    start_offset=pending.start_offset,
                    length=payload.size,
                )
                chunk_span = None
                if self.tracer is not None:
                    chunk_span = self.tracer.span(
                        "lts.chunk_write",
                        actor=f"container-{self.container_id}",
                        segment=segment,
                        chunk=chunk.chunk_name,
                        bytes=payload.size,
                    )
                try:
                    if self.faults is not None:
                        extra = self.faults.lts_op(f"container-{self.container_id}")
                        if extra:
                            yield self.sim.timeout(extra)
                    try:
                        yield self.lts.write_chunk(chunk.chunk_name, payload)
                    except StorageError:
                        if not self.lts.exists(chunk.chunk_name):
                            raise
                        # A pre-crash incarnation already wrote this chunk
                        # name: tiering is idempotent (§4.3), and the
                        # rewrite covers at least the old bytes (recovery
                        # re-feeds the same WAL data) — replace it.
                        if chunk_span is not None:
                            chunk_span.annotate("idempotent-rewrite")
                        yield self.lts.delete_chunk(chunk.chunk_name)
                        yield self.lts.write_chunk(chunk.chunk_name, payload)
                except Exception:
                    if chunk_span is not None:
                        chunk_span.annotate("lts-error")
                        chunk_span.finish()
                    # transient LTS failure: re-buffer and retry shortly
                    self._requeue(segment, pending)
                    if not self._running:
                        return
                    yield self.sim.timeout(0.05)
                    continue
                if chunk_span is not None:
                    chunk_span.finish()
                self.chunks.setdefault(segment, []).append(chunk)
                self.storage_length[segment] = chunk.end_offset
                self.chunks_written += 1
                self.bytes_flushed += payload.size
                for sequence in pending.sequences:
                    self._outstanding.pop(sequence, None)
                self.on_flush(segment, chunk.end_offset)
                self.on_truncation_candidate(self.truncation_sequence())
                self._release_throttled()
                follow_on = self._pending.get(segment)
                if follow_on is None:
                    return
                if (
                    follow_on.size < self.config.flush_threshold
                    and self.sim.now - follow_on.oldest_time < self.config.flush_timeout
                ):
                    return
        finally:
            self._flushing.discard(segment)

    def _requeue(self, segment: str, pending: _PendingData) -> None:
        """Put a failed flush buffer back, in front of any newer buffer."""
        follow_on = self._pending.get(segment)
        if follow_on is not None:
            pending.pieces.extend(follow_on.pieces)
            pending.size += follow_on.size
            pending.sequences.extend(follow_on.sequences)
        self._pending[segment] = pending

    def flush_all(self) -> SimFuture:
        """Force-flush every pending buffer (used by tests and shutdown)."""

        def run():
            while self._pending or self._flushing:
                for segment in list(self._pending):
                    self._start_flush(segment)
                yield self.sim.timeout(0.001)

        return self.sim.process(run())

    def truncation_sequence(self) -> int:
        """Highest WAL sequence with no unflushed append at or below it."""
        if not self._outstanding:
            return 2**62
        return min(self._outstanding) - 1

    # ------------------------------------------------------------------
    # Metadata / reads
    # ------------------------------------------------------------------
    def flushed_offset(self, segment: str) -> int:
        return self.storage_length.get(segment, 0)

    def chunks_for_range(self, segment: str, offset: int, max_bytes: int) -> List[ChunkRecord]:
        """Chunks overlapping [offset, offset+max_bytes), in order."""
        end = offset + max_bytes
        return [
            c
            for c in self.chunks.get(segment, [])
            if c.start_offset < end and c.end_offset > offset
        ]

    def truncate_segment(self, segment: str, offset: int) -> SimFuture:
        """Delete chunks entirely below ``offset`` (retention, §2.1)."""

        def run():
            kept = []
            for chunk in self.chunks.get(segment, []):
                if chunk.end_offset <= offset:
                    yield self.lts.delete_chunk(chunk.chunk_name)
                else:
                    kept.append(chunk)
            self.chunks[segment] = kept

        return self.sim.process(run())

    def delete_segment(self, segment: str) -> SimFuture:
        def run():
            for chunk in self.chunks.pop(segment, []):
                yield self.lts.delete_chunk(chunk.chunk_name)
            self.storage_length.pop(segment, None)
            self._pending.pop(segment, None)

        return self.sim.process(run())

    def snapshot(self) -> dict:
        """State for metadata checkpoints (recovery, §4.4)."""
        return {
            "chunks": {s: list(records) for s, records in self.chunks.items()},
            "storage_length": dict(self.storage_length),
        }

    def restore(self, snapshot: dict) -> None:
        self.chunks = {s: list(records) for s, records in snapshot["chunks"].items()}
        self.storage_length = dict(snapshot["storage_length"])

    def stop(self) -> None:
        self._running = False
        # Throttled writers must not hang on a dead container.
        from repro.common.errors import ContainerOfflineError

        while self._throttle_waiters:
            waiter = self._throttle_waiters.popleft()
            if not waiter.done:
                waiter.set_exception(
                    ContainerOfflineError(f"container {self.container_id} stopped")
                )
