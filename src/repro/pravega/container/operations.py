"""Segment-container operations (§4.1).

"In the segment store, every request that modifies a segment is converted
into an operation and queued up for processing.  There are multiple types
of operations, each indicating a different modification to the segment."
All operations of a container are multiplexed into its single WAL log.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.common.payload import Payload

__all__ = [
    "OperationType",
    "Operation",
    "AppendOperation",
    "CreateSegmentOperation",
    "SealSegmentOperation",
    "TruncateSegmentOperation",
    "MergeSegmentOperation",
    "DeleteSegmentOperation",
    "TableUpdateOperation",
    "MetadataCheckpointOperation",
    "OP_HEADER_SIZE",
]

#: serialized header per operation in a WAL data frame
OP_HEADER_SIZE = 32


class OperationType(enum.Enum):
    APPEND = "append"
    CREATE = "create"
    SEAL = "seal"
    TRUNCATE = "truncate"
    MERGE = "merge"
    DELETE = "delete"
    TABLE_UPDATE = "table_update"
    CHECKPOINT = "checkpoint"


@dataclass
class Operation:
    """Base class; ``sequence_number`` is assigned by the durable log."""

    segment: str
    sequence_number: int = field(default=-1, init=False)

    op_type: OperationType = field(default=None, init=False)  # type: ignore[assignment]

    @property
    def serialized_size(self) -> int:
        return OP_HEADER_SIZE


@dataclass
class AppendOperation(Operation):
    """An append of ``payload`` bytes to a segment.

    Carries the writer's dedup state: the ⟨writer id, event number⟩ pair is
    persisted in the segment's attributes as part of processing the append
    (§3.2), so duplicates can be detected after reconnects.
    """

    payload: Payload = field(default_factory=Payload.empty)
    writer_id: str = ""
    event_number: int = -1
    event_count: int = 1
    #: assigned by the container at admission: segment offset of this append
    offset: int = field(default=-1, init=False)

    def __post_init__(self) -> None:
        self.op_type = OperationType.APPEND

    @property
    def serialized_size(self) -> int:
        return OP_HEADER_SIZE + self.payload.size


@dataclass
class CreateSegmentOperation(Operation):
    #: non-empty for table segments (key-value API, §2.2)
    is_table: bool = False

    def __post_init__(self) -> None:
        self.op_type = OperationType.CREATE


@dataclass
class SealSegmentOperation(Operation):
    def __post_init__(self) -> None:
        self.op_type = OperationType.SEAL


@dataclass
class TruncateSegmentOperation(Operation):
    offset: int = 0

    def __post_init__(self) -> None:
        self.op_type = OperationType.TRUNCATE


@dataclass
class MergeSegmentOperation(Operation):
    """Merge ``source`` (sealed) into ``segment`` at its current length."""

    source: str = ""

    def __post_init__(self) -> None:
        self.op_type = OperationType.MERGE


@dataclass
class DeleteSegmentOperation(Operation):
    def __post_init__(self) -> None:
        self.op_type = OperationType.DELETE


@dataclass
class TableUpdateOperation(Operation):
    """A serialized batch of key-value table updates (§4.3).

    ``updates`` maps key -> (value, expected_version or None); a None value
    means removal.  All updates in one operation commit atomically.
    """

    updates: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.op_type = OperationType.TABLE_UPDATE

    @property
    def serialized_size(self) -> int:
        payload = 0
        for key, (value, _) in self.updates.items():
            payload += len(str(key)) + 16
            if value is None:
                continue
            try:
                payload += len(value)
            except TypeError:
                payload += 16  # scalar values serialize small
        return OP_HEADER_SIZE + payload


@dataclass
class MetadataCheckpointOperation(Operation):
    """A snapshot of the container metadata (§4.4).

    Recovery reads the last checkpoint and replays subsequent operations.
    """

    snapshot: Optional[Any] = None
    snapshot_size: int = 0

    def __post_init__(self) -> None:
        self.op_type = OperationType.CHECKPOINT

    @property
    def serialized_size(self) -> int:
        return OP_HEADER_SIZE + self.snapshot_size
