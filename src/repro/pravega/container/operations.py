"""Segment-container operations (§4.1).

"In the segment store, every request that modifies a segment is converted
into an operation and queued up for processing.  There are multiple types
of operations, each indicating a different modification to the segment."
All operations of a container are multiplexed into its single WAL log.

These are plain ``__slots__`` classes rather than dataclasses: an
:class:`AppendOperation` is allocated for every admitted append, so the
per-instance dict and ``__post_init__`` dispatch are measurable overhead
on the message path.  ``op_type`` is a class attribute (one per subclass,
never per instance).
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Optional

from repro.common.payload import Payload

__all__ = [
    "OperationType",
    "Operation",
    "AppendOperation",
    "CreateSegmentOperation",
    "SealSegmentOperation",
    "TruncateSegmentOperation",
    "MergeSegmentOperation",
    "DeleteSegmentOperation",
    "TableUpdateOperation",
    "MetadataCheckpointOperation",
    "OP_HEADER_SIZE",
]

#: serialized header per operation in a WAL data frame
OP_HEADER_SIZE = 32


class OperationType(enum.Enum):
    APPEND = "append"
    CREATE = "create"
    SEAL = "seal"
    TRUNCATE = "truncate"
    MERGE = "merge"
    DELETE = "delete"
    TABLE_UPDATE = "table_update"
    CHECKPOINT = "checkpoint"


class Operation:
    """Base class; ``sequence_number`` is assigned by the durable log."""

    __slots__ = ("segment", "sequence_number", "trace_span")

    #: overridden by each subclass; never assigned per instance
    op_type: OperationType = None  # type: ignore[assignment]

    def __init__(self, segment: str) -> None:
        self.segment = segment
        self.sequence_number = -1
        #: trace span attached at admission (repro.obs), None when untraced
        self.trace_span: Optional[object] = None

    @property
    def serialized_size(self) -> int:
        return OP_HEADER_SIZE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(segment={self.segment!r}, "
            f"seq={self.sequence_number})"
        )


class AppendOperation(Operation):
    """An append of ``payload`` bytes to a segment.

    Carries the writer's dedup state: the ⟨writer id, event number⟩ pair is
    persisted in the segment's attributes as part of processing the append
    (§3.2), so duplicates can be detected after reconnects.
    """

    __slots__ = ("payload", "writer_id", "event_number", "event_count", "offset")

    op_type = OperationType.APPEND

    def __init__(
        self,
        segment: str,
        payload: Optional[Payload] = None,
        writer_id: str = "",
        event_number: int = -1,
        event_count: int = 1,
    ) -> None:
        self.segment = segment
        self.sequence_number = -1
        self.trace_span = None
        self.payload = payload if payload is not None else Payload.empty()
        self.writer_id = writer_id
        self.event_number = event_number
        self.event_count = event_count
        #: assigned by the container at admission: segment offset of this append
        self.offset = -1

    @property
    def serialized_size(self) -> int:
        return OP_HEADER_SIZE + self.payload.size


class CreateSegmentOperation(Operation):
    __slots__ = ("is_table",)

    op_type = OperationType.CREATE

    def __init__(self, segment: str, is_table: bool = False) -> None:
        super().__init__(segment)
        #: non-empty for table segments (key-value API, §2.2)
        self.is_table = is_table


class SealSegmentOperation(Operation):
    __slots__ = ()

    op_type = OperationType.SEAL


class TruncateSegmentOperation(Operation):
    __slots__ = ("offset",)

    op_type = OperationType.TRUNCATE

    def __init__(self, segment: str, offset: int = 0) -> None:
        super().__init__(segment)
        self.offset = offset


class MergeSegmentOperation(Operation):
    """Merge ``source`` (sealed) into ``segment`` at its current length."""

    __slots__ = ("source",)

    op_type = OperationType.MERGE

    def __init__(self, segment: str, source: str = "") -> None:
        super().__init__(segment)
        self.source = source


class DeleteSegmentOperation(Operation):
    __slots__ = ()

    op_type = OperationType.DELETE


class TableUpdateOperation(Operation):
    """A serialized batch of key-value table updates (§4.3).

    ``updates`` maps key -> (value, expected_version or None); a None value
    means removal.  All updates in one operation commit atomically.
    """

    __slots__ = ("updates",)

    op_type = OperationType.TABLE_UPDATE

    def __init__(self, segment: str, updates: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(segment)
        self.updates = updates if updates is not None else {}

    @property
    def serialized_size(self) -> int:
        payload = 0
        for key, (value, _) in self.updates.items():
            payload += len(str(key)) + 16
            if value is None:
                continue
            try:
                payload += len(value)
            except TypeError:
                payload += 16  # scalar values serialize small
        return OP_HEADER_SIZE + payload


class MetadataCheckpointOperation(Operation):
    """A snapshot of the container metadata (§4.4).

    Recovery reads the last checkpoint and replays subsequent operations.
    """

    __slots__ = ("snapshot", "snapshot_size")

    op_type = OperationType.CHECKPOINT

    def __init__(
        self,
        segment: str,
        snapshot: Optional[Any] = None,
        snapshot_size: int = 0,
    ) -> None:
        super().__init__(segment)
        self.snapshot = snapshot
        self.snapshot_size = snapshot_size

    @property
    def serialized_size(self) -> int:
        return OP_HEADER_SIZE + self.snapshot_size
