"""Segment container internals: operations, durable log, cache, read
index, storage writer, and the container itself (§4)."""

from repro.pravega.container.cache import BlockCache, CacheFullError, CacheSpec
from repro.pravega.container.container import (
    AppendResult,
    ContainerConfig,
    ReadResult,
    SegmentContainer,
    SegmentInfo,
    SegmentState,
)
from repro.pravega.container.durable_log import DataFrame, DurableLog, DurableLogConfig
from repro.pravega.container.read_index import CacheManager, IndexEntry, SegmentReadIndex
from repro.pravega.container.storage_writer import (
    ChunkRecord,
    StorageWriter,
    StorageWriterConfig,
)

__all__ = [
    "SegmentContainer",
    "ContainerConfig",
    "SegmentState",
    "SegmentInfo",
    "AppendResult",
    "ReadResult",
    "DurableLog",
    "DurableLogConfig",
    "DataFrame",
    "BlockCache",
    "CacheSpec",
    "CacheFullError",
    "SegmentReadIndex",
    "CacheManager",
    "IndexEntry",
    "StorageWriter",
    "StorageWriterConfig",
    "ChunkRecord",
]
