"""The durable log: operation queue, data frames and the WAL (§4.1).

"A segment container has a single, dedicated WAL log to which it writes
all operations it receives.  Many segments can be mapped to a single
segment container, so all operations from a container's segments are
multiplexed into that single log."

The container aggregates operations into **data frames**.  When the
processing queue runs dry it waits a little for more operations, using
the paper's adaptive formula::

    Delay = RecentLatency * (1 - AvgWriteSize / MaxFrameSize)

— proportional to recent WAL latency, inversely proportional to recent
frame fill: full frames mean throughput is already maximized (no wait);
underutilized frames justify waiting (up to a bound) to batch more.

The WAL itself is a sequence of Bookkeeper ledgers: frames are appended
to the current ledger, ledgers roll over at a size bound, and truncation
(driven by the storage writer, §4.3) deletes fully-flushed ledgers.  The
ledger list is kept in the coordination service so a recovering container
can find — and fence — its log (§4.4).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.common.errors import BookkeeperError, ContainerOfflineError, NoNodeError
from repro.common.payload import Payload
from repro.bookkeeper.client import BookKeeperClient, LedgerHandle
from repro.pravega.container.operations import Operation
from repro.sim.core import SimFuture, Simulator
from repro.zookeeper.service import ZkClient

__all__ = ["DurableLogConfig", "DataFrame", "DurableLog", "FRAME_HEADER_SIZE"]

FRAME_HEADER_SIZE = 64


@dataclass(frozen=True)
class DurableLogConfig:
    #: maximum serialized size of one data frame
    max_frame_size: int = 1024 * 1024
    #: hard bound on the adaptive batching delay
    max_batch_delay: float = 0.010
    #: roll to a new ledger after this many bytes
    ledger_rollover_bytes: int = 128 * 1024 * 1024
    #: Bookkeeper replication for the WAL (Table 1 defaults)
    ensemble_size: int = 3
    write_quorum: int = 3
    ack_quorum: int = 2


@dataclass
class DataFrame:
    """One WAL entry: a batch of multiplexed operations."""

    operations: List[Operation] = field(default_factory=list)
    first_sequence: int = -1
    last_sequence: int = -1

    @property
    def serialized_size(self) -> int:
        return FRAME_HEADER_SIZE + sum(op.serialized_size for op in self.operations)


@dataclass
class _LedgerInfo:
    ledger_id: int
    first_sequence: int
    last_sequence: int = -1
    size: int = 0


class DurableLog:
    """The per-container WAL pipeline."""

    def __init__(
        self,
        sim: Simulator,
        container_id: int,
        bk_client: BookKeeperClient,
        zk: ZkClient,
        config: Optional[DurableLogConfig] = None,
        apply_callback: Optional[Callable[[Operation], None]] = None,
        faults=None,
    ) -> None:
        self.sim = sim
        self.container_id = container_id
        self.bk_client = bk_client
        self.zk = zk
        self.config = config or DurableLogConfig()
        self.apply_callback = apply_callback or (lambda op: None)
        #: fault-injection hook (repro.faults.FaultEngine); unwired by default
        self.faults = faults
        #: queued (operation, future) pairs awaiting frame assembly
        self._queue: deque[tuple[Operation, SimFuture]] = deque()
        self._next_sequence = 0
        self._writer_running = False
        self._current_ledger: Optional[LedgerHandle] = None
        self._ledgers: List[_LedgerInfo] = []
        self._online = False
        self._failure: Optional[BaseException] = None
        #: invoked once on a fatal WAL failure (container fail-stop, §4.4)
        self.on_fatal: Callable[[BaseException], None] = lambda exc: None
        # Adaptive batching state.
        self._recent_latency = 0.001
        self._recent_fill = 1.0
        # Metrics.
        self.frames_written = 0
        self.operations_applied = 0
        self.bytes_written = 0
        self.last_applied_sequence = -1

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def zk_path(self) -> str:
        return f"/pravega/containers/{self.container_id}/ledgers"

    @property
    def online(self) -> bool:
        return self._online

    def start(self) -> SimFuture:
        """Open a fresh ledger and begin accepting operations."""

        def startup():
            yield self.zk.ensure_path(self.zk_path)
            yield from self._roll_ledger()
            self._online = True

        return self.sim.process(startup())

    def _persist_ledger_list(self):
        payload = json.dumps([info.ledger_id for info in self._ledgers]).encode()
        return self.zk.set(self.zk_path, payload)

    def _roll_ledger(self):
        if self._current_ledger is not None:
            self._current_ledger.close()
        handle = self.bk_client.create_ledger(
            ensemble_size=self.config.ensemble_size,
            write_quorum=self.config.write_quorum,
            ack_quorum=self.config.ack_quorum,
        )
        self._current_ledger = handle
        self._ledgers.append(_LedgerInfo(handle.ledger_id, self._next_sequence))
        yield self._persist_ledger_list()

    def shutdown(self, failure: Optional[BaseException] = None) -> None:
        """Stop accepting work; fail everything still queued (§4.4)."""
        if not self._online and self._failure is not None:
            return
        self._online = False
        self._failure = failure or ContainerOfflineError(
            f"container {self.container_id} durable log is offline"
        )
        pending, self._queue = list(self._queue), deque()
        for _, fut in pending:
            if not fut.done:
                fut.set_exception(self._failure)
        if self._current_ledger is not None:
            self._current_ledger.close()
        if failure is not None:
            # A *fatal* WAL failure (fencing, quorum loss) fail-stops the
            # whole container; a plain administrative shutdown does not.
            self.on_fatal(self._failure)

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def add(self, operation: Operation) -> SimFuture:
        """Queue an operation; resolves (with the op) once it is durable
        in the WAL and applied to the container's in-memory state."""
        fut = self.sim.future()
        if not self._online:
            fut.set_exception(
                self._failure
                or ContainerOfflineError(f"container {self.container_id} offline")
            )
            return fut
        operation.sequence_number = self._next_sequence
        self._next_sequence += 1
        self._queue.append((operation, fut))
        if not self._writer_running:
            self._writer_running = True
            self.sim.process(self._writer_loop())
        return fut

    def _writer_loop(self):
        config = self.config
        while self._queue and self._online:
            frame = DataFrame()
            batch: List[tuple[Operation, SimFuture]] = []
            size = FRAME_HEADER_SIZE

            def take_available() -> int:
                nonlocal size
                taken = 0
                while self._queue:
                    op, fut = self._queue[0]
                    op_size = op.serialized_size
                    if batch and size + op_size > config.max_frame_size:
                        break
                    self._queue.popleft()
                    batch.append((op, fut))
                    frame.operations.append(op)
                    size += op_size
                    taken += 1
                return taken

            take_available()
            # Queue ran dry with a non-full frame: adaptive wait (§4.1).
            if not self._queue and size < config.max_frame_size:
                delay = self._recent_latency * (1.0 - self._recent_fill)
                delay = min(max(delay, 0.0), config.max_batch_delay)
                if delay > 0:
                    yield delay
                    take_available()

            frame.first_sequence = batch[0][0].sequence_number
            frame.last_sequence = batch[-1][0].sequence_number
            # ``size`` already tracks the serialized frame size — avoid
            # re-summing every operation via DataFrame.serialized_size.
            frame_size = size

            # Ledger rollover.
            ledger_info = self._ledgers[-1]
            if ledger_info.size + frame_size > config.ledger_rollover_bytes:
                try:
                    yield from self._roll_ledger()
                except Exception as exc:
                    # Rollover needs zookeeper (ledger-list persist) and
                    # Bookkeeper; losing either mid-roll is fatal for the
                    # container, never a hang for queued operations.
                    for _, fut in batch:
                        if not fut.done:
                            fut.set_exception(exc)
                    self.shutdown(exc)
                    return
                ledger_info = self._ledgers[-1]

            started = self.sim.now
            # One frame span per WAL entry, parented on the first traced
            # operation; absorbed into every batched op (shared-span model).
            frame_span = None
            for op, _ in batch:
                op_span = op.trace_span
                if op_span is not None:
                    frame_span = op_span.child(
                        "durablelog.frame", bytes=frame_size, ops=len(batch)
                    )
                    break
            try:
                yield self._current_ledger.append(
                    Payload.synthetic(frame_size), record=frame, span=frame_span
                )
            except BookkeeperError as exc:
                if frame_span is not None:
                    frame_span.annotate("wal-fatal", error=type(exc).__name__)
                    frame_span.finish()
                # Fenced or quorum lost: the container must shut down (§4.4).
                for _, fut in batch:
                    if not fut.done:
                        fut.set_exception(exc)
                self.shutdown(exc)
                return
            latency = self.sim.now - started
            self._recent_latency += 0.2 * (latency - self._recent_latency)
            fill = frame_size / config.max_frame_size
            self._recent_fill += 0.2 * (min(fill, 1.0) - self._recent_fill)

            ledger_info.size += frame_size
            ledger_info.last_sequence = frame.last_sequence
            self.frames_written += 1
            self.bytes_written += frame_size

            if frame_span is not None:
                frame_span.finish()
                for op, _ in batch:
                    if op.trace_span is not None:
                        op.trace_span.absorb(frame_span)

            # Accept the frame: apply operations to the container state.
            apply_callback = self.apply_callback
            for op, fut in batch:
                apply_callback(op)
                self.operations_applied += 1
                self.last_applied_sequence = op.sequence_number
                if not fut.done:
                    fut.set_result(op)
        self._writer_running = False

    # ------------------------------------------------------------------
    # Truncation (§4.3): delete ledgers fully below the flushed sequence
    # ------------------------------------------------------------------
    def truncate(self, up_to_sequence: int) -> SimFuture:
        """Delete WAL ledgers whose operations are all <= ``up_to_sequence``.

        The current (open) ledger is never deleted.
        """

        def run():
            deletable = [
                info
                for info in self._ledgers[:-1]
                if info.last_sequence != -1 and info.last_sequence <= up_to_sequence
            ]
            for info in deletable:
                yield self.bk_client.delete_ledger(info.ledger_id)
                self._ledgers.remove(info)
            if deletable:
                yield self._persist_ledger_list()
            return len(deletable)

        return self.sim.process(run())

    @property
    def ledger_count(self) -> int:
        return len(self._ledgers)

    @property
    def wal_bytes(self) -> int:
        return sum(info.size for info in self._ledgers)

    # ------------------------------------------------------------------
    # Recovery (§4.4)
    # ------------------------------------------------------------------
    @staticmethod
    def recover(
        sim: Simulator,
        container_id: int,
        bk_client: BookKeeperClient,
        zk: ZkClient,
        config: Optional[DurableLogConfig] = None,
        faults=None,
    ) -> SimFuture:
        """Fence the previous owner's ledgers and replay their frames.

        Resolves with ``(frames, log)``: the ordered list of recovered
        :class:`DataFrame` objects and a fresh, started :class:`DurableLog`
        ready for new operations.  The new log's sequence numbers continue
        after the recovered ones.

        Recovery itself runs under the fault engine: each replay step
        reports to ``faults.recovery_step``, which may crash recovery
        (``InjectedCrashError``).  A crashed recovery leaves no partial
        new state — fencing is idempotent, so the caller simply retries.
        """
        log = DurableLog(sim, container_id, bk_client, zk, config, faults=faults)
        site = f"container-{container_id}"

        def run():
            frames: List[DataFrame] = []
            if faults is not None:
                faults.recovery_step(site)
            try:
                data, _ = yield zk.get(log.zk_path)
                ledger_ids = json.loads(data.decode()) if data else []
            except NoNodeError:
                ledger_ids = []
            recovered_infos: List[_LedgerInfo] = []
            for ledger_id in ledger_ids:
                if bk_client.cluster.ledger_manager.lookup(ledger_id) is None:
                    continue  # already truncated
                if faults is not None:
                    # replay is re-injectable: a crash here aborts recovery
                    faults.recovery_step(site)
                handle = yield bk_client.open_ledger_with_recovery(ledger_id)
                info = _LedgerInfo(ledger_id, first_sequence=0)
                last = handle.metadata.last_entry_id
                if last >= 0:
                    entries = yield handle.read(0, last)
                    for entry in entries:
                        if isinstance(entry.record, DataFrame):
                            frames.append(entry.record)
                            if info.last_sequence < 0:
                                info.first_sequence = entry.record.first_sequence
                            info.last_sequence = entry.record.last_sequence
                            info.size += entry.record.serialized_size
                recovered_infos.append(info)
            max_seq = -1
            for frame in frames:
                max_seq = max(max_seq, frame.last_sequence)
            log._next_sequence = max_seq + 1
            # The surviving ledgers stay on the new log's ledger list:
            # until a checkpoint + flush lets truncation delete them, they
            # are the only durable copy of the replayed operations, and a
            # repeat crash before that must be able to find them again.
            log._ledgers.extend(recovered_infos)
            yield log.start()
            return frames, log

        return sim.process(run())
