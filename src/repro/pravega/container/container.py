"""The segment container (§4.1–§4.4).

Containers "do the heavy lifting on segments": every modification is
converted into an operation, multiplexed into the container's single WAL
log, applied to in-memory state (read index + block cache) once durable,
tiered to LTS by the storage writer, and periodically snapshotted via
metadata-checkpoint operations so a recovering container can rebuild its
exact pre-crash state by replaying the WAL (§4.4).

State discipline: **metadata** (segment lengths, attributes, seals, table
contents) is updated *speculatively at admission* — admission order is
WAL sequence order, so the metadata always reflects a prefix of the
operation sequence and checkpoint snapshots taken at admission are
consistent.  **Data-plane effects** (cache/read-index population, tail
read completion, tiering) happen at *apply* time, after the WAL ack.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.errors import (
    ConditionalUpdateError,
    ContainerOfflineError,
    SegmentExistsError,
    SegmentNotFoundError,
    SegmentSealedError,
    StreamError,
)
from repro.common.metrics import MetricsRegistry, RateMeter
from repro.common.payload import Payload
from repro.bookkeeper.client import BookKeeperClient
from repro.lts.base import LongTermStorage
from repro.pravega.container.cache import BlockCache, CacheFullError, CacheSpec
from repro.pravega.container.durable_log import DataFrame, DurableLog, DurableLogConfig
from repro.pravega.container.operations import (
    OP_HEADER_SIZE,
    AppendOperation,
    CreateSegmentOperation,
    DeleteSegmentOperation,
    MetadataCheckpointOperation,
    Operation,
    OperationType,
    SealSegmentOperation,
    TableUpdateOperation,
    TruncateSegmentOperation,
)
from repro.pravega.container.read_index import CacheManager, SegmentReadIndex
from repro.pravega.container.storage_writer import (
    StorageWriter,
    StorageWriterConfig,
)
from repro.sim.core import SimFuture, Simulator
from repro.zookeeper.service import ZkClient

__all__ = [
    "ContainerConfig",
    "ServingConfig",
    "SegmentState",
    "SegmentInfo",
    "ReadResult",
    "AppendResult",
    "SegmentContainer",
]


@dataclass(frozen=True)
class ServingConfig:
    """Read-path serving-tier policy knobs (DESIGN.md §13).

    The defaults reproduce the pre-serving-tier behavior exactly —
    golden kernel/trace/figure fixtures are byte-identical with this
    config — so scenarios opt in per cluster.
    """

    #: single-flight coalescing of LTS chunk fetches: concurrent readers
    #: (and read-ahead) of the same cold chunk share one storage read
    coalesce_lts_fetches: bool = False
    #: CacheManager admission of LTS-fetched runs: "always" admits
    #: directly; "second_touch" starts runs on probation (a one-pass
    #: mass replay cannot evict the tail working set)
    admission_policy: str = "always"
    #: CacheManager eviction order: "generation" (Pravega's native
    #: scheme), "lru", or "2q" (lru + second-touch shorthand)
    eviction_policy: str = "generation"
    #: park tail reads as bare futures resolved directly by the shared
    #: append fan-out, skipping the per-request reader process; changes
    #: kernel event counts, so mass fan-out scenarios opt in explicitly
    direct_tail_delivery: bool = False


@dataclass(frozen=True)
class ContainerConfig:
    durable_log: DurableLogConfig = field(default_factory=DurableLogConfig)
    storage: StorageWriterConfig = field(default_factory=StorageWriterConfig)
    cache: CacheSpec = field(default_factory=CacheSpec)
    #: read-path serving-tier policies (coalescing, admission, eviction)
    serving: ServingConfig = field(default_factory=ServingConfig)
    #: take a metadata checkpoint every this many operations ...
    checkpoint_interval_ops: int = 20_000
    #: ... or this many seconds, whichever comes first
    checkpoint_interval_time: float = 10.0
    #: chunks prefetched in parallel on historical reads (Fig. 12)
    readahead_chunks: int = 4
    #: estimated serialized size of a metadata checkpoint
    checkpoint_size: int = 64 * 1024


@dataclass
class SegmentState:
    """Container-side metadata for one segment."""

    name: str
    is_table: bool = False
    #: truncation point: reads below this offset fail
    start_offset: int = 0
    #: admission-time (speculative) write offset
    length: int = 0
    #: applied (readable) length
    applied_length: int = 0
    sealed: bool = False
    deleted: bool = False
    #: segment attributes (§3.2): writer id -> last event number
    attributes: Dict[str, int] = field(default_factory=dict)
    #: table contents when is_table: key -> (value, version)
    table: Dict[str, Tuple[Any, int]] = field(default_factory=dict)


@dataclass(frozen=True)
class SegmentInfo:
    name: str
    length: int
    start_offset: int
    sealed: bool
    is_table: bool


@dataclass(frozen=True)
class AppendResult:
    offset: int
    duplicate: bool = False


@dataclass(frozen=True)
class ReadResult:
    payload: Payload
    offset: int
    end_of_segment: bool = False


class SegmentContainer:
    """One unit of data-plane parallelism (§2.2)."""

    def __init__(
        self,
        sim: Simulator,
        container_id: int,
        bk_client: BookKeeperClient,
        zk: ZkClient,
        lts: LongTermStorage,
        config: Optional[ContainerConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        faults=None,
        tracer=None,
    ) -> None:
        self.sim = sim
        self.container_id = container_id
        self.config = config or ContainerConfig()
        self.metrics = metrics or MetricsRegistry()
        #: fault-injection hook (repro.faults.FaultEngine); unwired by default
        self.faults = faults
        #: optional repro.obs.Tracer (spans arrive via append/read kwargs;
        #: the tracer itself is only needed for background tiering spans)
        self.tracer = tracer
        self.segments: Dict[str, SegmentState] = {}
        self.cache = BlockCache(self.config.cache)
        self.cache_manager = CacheManager(
            self.cache,
            eviction=self.config.serving.eviction_policy,
            admission=self.config.serving.admission_policy,
        )
        self.cache_manager.eviction_counter = self.metrics.counter("cache.evictions")
        self.read_indexes: Dict[str, SegmentReadIndex] = {}
        self.durable_log = DurableLog(
            sim,
            container_id,
            bk_client,
            zk,
            self.config.durable_log,
            apply_callback=self._apply,
            faults=faults,
        )
        self.durable_log.on_fatal = self._on_wal_failure
        self.storage_writer = StorageWriter(
            sim, container_id, lts, self.config.storage, faults=faults
        )
        self.storage_writer.tracer = tracer
        self.storage_writer.on_flush = self._on_flush
        self.storage_writer.on_truncation_candidate = self._on_truncation_candidate
        self.storage_writer.external_backlog_provider = lambda: self._unapplied_bytes
        self.cache_manager.flushed_offset_provider = self.storage_writer.flushed_offset
        #: bytes admitted to the WAL but not yet applied (counts toward
        #: the ingestion throttle watermarks)
        self._unapplied_bytes = 0
        self._applies_since_evict = 0
        #: parked tail reads per segment: waiter future -> (offset,
        #: max_bytes).  Insertion-ordered; O(1) deregistration when a
        #: reader detaches mid-wait.
        #: parked tail reads: segment -> {future: (offset, max_bytes, direct)}
        #: where ``direct`` futures are resolved straight to a ReadResult
        #: by the fan-out (no reader process behind them)
        self._tail_waiters: Dict[str, Dict[SimFuture, Tuple[int, int, bool]]] = {}
        #: single-flight LTS fetches in progress: (segment, chunk) -> future
        self._inflight_fetches: Dict[Tuple[str, str], SimFuture] = {}
        self._event_rates: Dict[str, RateMeter] = {}
        self._byte_rates: Dict[str, RateMeter] = {}
        #: per-segment (event meter, byte meter) pairs plus prebound hot
        #: counters — the per-append path skips the registry lookups
        self._rate_pairs: Dict[str, Tuple[RateMeter, RateMeter]] = {}
        self._append_count = self.metrics.counter("append.count")
        self._append_bytes = self.metrics.counter("append.bytes")
        sim.register_fluid(self)
        self._read_cache_bytes = self.metrics.counter("read.cache_bytes")
        self._read_cache_hits = self.metrics.counter("read.cache_hits")
        self._read_cache_misses = self.metrics.counter("read.cache_misses")
        self._read_lts_ops = self.metrics.counter("read.lts_fetch_ops")
        self._read_coalesced = self.metrics.counter("read.coalesced_fetches")
        self._ops_since_checkpoint = 0
        self._last_checkpoint_sequence = -1
        self._checkpoint_running = False
        self._recovering = False
        self._online = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def online(self) -> bool:
        return self._online

    def start(self) -> SimFuture:
        """Fresh start (no prior state expected)."""

        def run():
            yield self.durable_log.start()
            self._online = True
            self.sim.process(self._checkpoint_timer())

        return self.sim.process(run())

    def recover(self) -> SimFuture:
        """Recovery (§4.4): fence the old WAL, restore the last metadata
        checkpoint, replay subsequent operations, then come online."""

        def run():
            frames, new_log = yield DurableLog.recover(
                self.sim,
                self.container_id,
                self.durable_log.bk_client,
                self.durable_log.zk,
                self.config.durable_log,
                faults=self.faults,
            )
            self.durable_log = new_log
            self.durable_log.apply_callback = self._apply
            self.durable_log.on_fatal = self._on_wal_failure
            operations: List[Operation] = [
                op for frame in frames for op in frame.operations
            ]
            # Find the last checkpoint and restore its snapshot.
            start_index = 0
            for i in range(len(operations) - 1, -1, -1):
                op = operations[i]
                if op.op_type is OperationType.CHECKPOINT and op.snapshot is not None:
                    self._restore_snapshot(op.snapshot)
                    self._last_checkpoint_sequence = op.sequence_number
                    start_index = i + 1
                    break
            self._recovering = True
            try:
                # Operations *before* the checkpoint are retained in the WAL
                # only because their data was not yet flushed to LTS: re-feed
                # their data-plane effects (cache + tiering), metadata comes
                # from the snapshot.
                for op in operations[:start_index]:
                    if op.op_type is OperationType.APPEND:
                        self._apply_append(op)  # type: ignore[arg-type]
                # Operations after the checkpoint replay fully.
                for op in operations[start_index:]:
                    self._replay(op)
            finally:
                self._recovering = False
            self._online = True
            self.sim.process(self._checkpoint_timer())
            return len(operations) - start_index

        return self.sim.process(run())

    def shutdown(self, failure: Optional[BaseException] = None) -> None:
        """Fail-stop (severe error or lost ownership): stop everything."""
        if not self._online and self.durable_log._failure is not None:
            return
        self._online = False
        self.durable_log.shutdown(failure)
        self.storage_writer.stop()
        for waiters in self._tail_waiters.values():
            for fut in waiters:
                if not fut.done:
                    fut.set_exception(
                        failure or ContainerOfflineError(str(self.container_id))
                    )
        self._tail_waiters.clear()
        self._inflight_fetches.clear()

    def _on_wal_failure(self, failure: BaseException) -> None:
        """A fatal WAL error (fencing / quorum loss) fail-stops the
        container (§4.4): "no further operation is allowed"."""
        if self._online:
            self.shutdown(failure)

    # ------------------------------------------------------------------
    # Admission helpers
    # ------------------------------------------------------------------
    def _require_online(self) -> None:
        if not self._online:
            raise ContainerOfflineError(f"container {self.container_id} offline")

    def _state(self, segment: str) -> SegmentState:
        state = self.segments.get(segment)
        if state is None or state.deleted:
            raise SegmentNotFoundError(segment)
        return state

    def _fail(self, exc: BaseException) -> SimFuture:
        fut = self.sim.future()
        fut.set_exception(exc)
        return fut

    # ------------------------------------------------------------------
    # Segment lifecycle operations
    # ------------------------------------------------------------------
    def create_segment(self, segment: str, is_table: bool = False) -> SimFuture:
        try:
            self._require_online()
        except ContainerOfflineError as exc:
            return self._fail(exc)
        if segment in self.segments and not self.segments[segment].deleted:
            return self._fail(SegmentExistsError(segment))
        state = SegmentState(name=segment, is_table=is_table)
        self.segments[segment] = state
        self.storage_writer.track_segment(segment)
        op = CreateSegmentOperation(segment, is_table=is_table)
        self._count_op()
        return self.durable_log.add(op)

    def seal_segment(self, segment: str) -> SimFuture:
        try:
            self._require_online()
            state = self._state(segment)
        except (ContainerOfflineError, SegmentNotFoundError) as exc:
            return self._fail(exc)
        if not state.sealed:
            state.sealed = True
            self._count_op()
            return self.durable_log.add(SealSegmentOperation(segment))
        done = self.sim.future()
        done.set_result(None)
        return done

    def truncate_segment(self, segment: str, offset: int) -> SimFuture:
        try:
            self._require_online()
            state = self._state(segment)
        except (ContainerOfflineError, SegmentNotFoundError) as exc:
            return self._fail(exc)
        if offset < state.start_offset or offset > state.length:
            return self._fail(
                StreamError(
                    f"truncate {segment} at {offset}: outside "
                    f"[{state.start_offset}, {state.length}]"
                )
            )
        state.start_offset = offset
        op = TruncateSegmentOperation(segment, offset=offset)
        self._count_op()
        return self.durable_log.add(op)

    def delete_segment(self, segment: str) -> SimFuture:
        try:
            self._require_online()
            state = self._state(segment)
        except (ContainerOfflineError, SegmentNotFoundError) as exc:
            return self._fail(exc)
        state.deleted = True
        self._count_op()
        return self.durable_log.add(DeleteSegmentOperation(segment))

    def get_info(self, segment: str) -> SegmentInfo:
        state = self._state(segment)
        return SegmentInfo(
            name=segment,
            length=state.applied_length,
            start_offset=state.start_offset,
            sealed=state.sealed,
            is_table=state.is_table,
        )

    def get_attribute(self, segment: str, writer_id: str) -> int:
        """Last event number persisted for ``writer_id`` (§3.2 handshake)."""
        return self._state(segment).attributes.get(writer_id, -1)

    # ------------------------------------------------------------------
    # Append path (§4.1)
    # ------------------------------------------------------------------
    def append(
        self,
        segment: str,
        payload: Payload,
        writer_id: str = "",
        event_number: int = -1,
        event_count: int = 1,
        span=None,
    ) -> SimFuture:
        """Append bytes; resolves with :class:`AppendResult` once durable.

        Duplicate batches (same writer, event number not advancing) are
        acknowledged without re-appending — exactly-once via segment
        attributes (§3.2).  Admission passes through the storage writer's
        throttle gate: if the LTS backlog is too large, the append waits
        (integrated tiering backpressure, §4.3).
        """
        try:
            self._require_online()
            state = self._state(segment)
        except (ContainerOfflineError, SegmentNotFoundError) as exc:
            return self._fail(exc)
        if state.sealed:
            return self._fail(SegmentSealedError(segment))
        if writer_id:
            last = state.attributes.get(writer_id, -1)
            if event_number >= 0 and event_number <= last:
                done = self.sim.future()
                done.set_result(AppendResult(offset=-1, duplicate=True))
                return done

        # Hot path: admission can proceed immediately (throttle gate open,
        # cache healthy) and tracing is off — admit synchronously and chain
        # the ack off the WAL future, skipping the per-append process.
        if (
            span is None
            and not self.storage_writer.throttled
            and not self.cache.overflowing
        ):
            op = AppendOperation(
                segment,
                payload=payload,
                writer_id=writer_id,
                event_number=event_number,
                event_count=event_count,
            )
            op.offset = state.length
            state.length += payload.size
            if writer_id and event_number >= 0:
                state.attributes[writer_id] = event_number
            self._track_rates(segment, event_count, payload.size)
            self._count_op()
            self._unapplied_bytes += payload.size
            result = SimFuture(self.sim)
            self.durable_log.add(op).add_callback(
                partial(self._append_acked, result, op)
            )
            return result

        def run():
            append_span = None
            if span is not None:
                append_span = span.child(
                    "container.append",
                    actor=f"container-{self.container_id}",
                    segment=segment,
                    bytes=payload.size,
                )
            gate = self.storage_writer.admission_gate()
            if not gate.done:
                self.metrics.counter("append.throttled").add()
                if append_span is not None:
                    append_span.annotate("admission-throttled")
                yield gate
            # Cache pressure also throttles ingestion: unflushed data is
            # pinned, so an overflowing cache means tiering is behind.
            while self.cache.overflowing and self._online:
                self.metrics.counter("append.cache_throttled").add()
                self.cache_manager.advance_generation()
                self.cache_manager.maybe_evict()
                yield self.sim.timeout(0.005)
            # Re-validate after a potential wait.
            current = self._state(segment)
            if current.sealed:
                raise SegmentSealedError(segment)
            op = AppendOperation(
                segment,
                payload=payload,
                writer_id=writer_id,
                event_number=event_number,
                event_count=event_count,
            )
            op.offset = current.length
            current.length += payload.size
            if writer_id and event_number >= 0:
                current.attributes[writer_id] = event_number
            self._track_rates(segment, event_count, payload.size)
            self._count_op()
            self._unapplied_bytes += payload.size
            if append_span is not None:
                op.trace_span = append_span
            try:
                yield self.durable_log.add(op)
            except BaseException:
                self._unapplied_bytes -= payload.size
                self.storage_writer.release_check()
                if append_span is not None:
                    append_span.annotate("wal-error")
                    append_span.finish()
                raise
            if append_span is not None:
                append_span.finish()
                span.absorb(append_span)
            return AppendResult(offset=op.offset)

        return self.sim.process(run())

    def _append_acked(
        self, result: SimFuture, op: AppendOperation, wal: SimFuture
    ) -> None:
        """Resolve a fast-path append once its WAL write settles."""
        exc = wal.exception
        if exc is not None:
            self._unapplied_bytes -= op.payload.size
            self.storage_writer.release_check()
            result.set_exception(exc)
        else:
            result.set_result(AppendResult(offset=op.offset))

    def _track_rates(self, segment: str, events: int, nbytes: int) -> None:
        now = self.sim.now
        pair = self._rate_pairs.get(segment)
        if pair is None:
            pair = (RateMeter(half_life=2.0), RateMeter(half_life=2.0))
            self._rate_pairs[segment] = pair
            self._event_rates[segment] = pair[0]
            self._byte_rates[segment] = pair[1]
        pair[0].record(now, events)
        pair[1].record(now, nbytes)
        self._append_count.add()
        self._append_bytes.add(nbytes)

    # ------------------------------------------------------------------
    # Fluid-mode protocol (repro.sim.fluid)
    # ------------------------------------------------------------------
    def fluid_snapshot(self) -> tuple:
        return (
            float(self._append_bytes.value),
            float(self.storage_writer.bytes_flushed),
            float(self.cache.used_bytes),
        )

    def fluid_advance(self, dt: float, rates) -> None:
        # Admitted bytes and cache occupancy are derived/live state owned
        # by the discrete machinery; nothing to extrapolate here.  (The
        # storage writer registers separately for its flush counters.)
        pass

    def fluid_throttle(self, rates):
        """``(eta, flush_rate, backlog_growth)`` when ingestion outruns
        tiering and an admission throttle is on course to engage.

        The structural signal is admitted byte rate vs. LTS flush
        bandwidth: their difference accumulates *somewhere* — the storage
        writer's watermarked backlog or the cache's pinned unflushed data
        — until one of the two admission gates (storage-writer watermark,
        cache overflow) closes.  ``eta`` is the earlier of the two
        projected closings; past it, conservation across the gate's
        hysteresis cycle caps the long-run admitted rate at the flush
        bandwidth.
        """
        admitted, flushed, cache_growth = rates
        if admitted <= 0.0 or admitted <= 1.02 * max(flushed, 0.0):
            return None
        if self.storage_writer.bytes_flushed <= 0:
            # The flush pipeline has not primed yet — the admitted/flushed
            # gap is one-time fill, not sustained backlog growth.
            return None
        growth = admitted - flushed
        sw = self.storage_writer
        headroom = sw.config.backlog_high_watermark - sw.total_backlog_bytes
        eta = max(headroom, 0.0) / growth
        if cache_growth > 0.0:
            cache_headroom = self.cache.spec.capacity_bytes - self.cache.used_bytes
            eta = min(eta, max(cache_headroom, 0.0) / cache_growth)
        return (eta, flushed, growth)

    def load_report(self) -> Dict[str, Tuple[float, float]]:
        """Per-segment (events/s, bytes/s) for the auto-scale feedback loop."""
        now = self.sim.now
        report = {}
        for segment, meter in self._event_rates.items():
            state = self.segments.get(segment)
            if state is None or state.deleted or state.sealed:
                continue
            report[segment] = (
                meter.decay_to(now),
                self._byte_rates[segment].decay_to(now),
            )
        return report

    # ------------------------------------------------------------------
    # Table operations (§2.2 key-value API; used for stream metadata)
    # ------------------------------------------------------------------
    def table_update(
        self, segment: str, updates: Dict[str, Tuple[Any, Optional[int]]]
    ) -> SimFuture:
        """Atomically apply a batch of conditional updates.

        ``updates`` maps key -> (value, expected_version); expected_version
        None means unconditional; value None means removal.  All-or-nothing:
        if any condition fails, the whole transaction fails (§4.3).
        Resolves with {key: new_version}.
        """
        try:
            self._require_online()
            state = self._state(segment)
        except (ContainerOfflineError, SegmentNotFoundError) as exc:
            return self._fail(exc)
        if not state.is_table:
            return self._fail(StreamError(f"{segment} is not a table segment"))
        # Validate all conditions against the speculative table state.
        for key, (value, expected) in updates.items():
            current = state.table.get(key)
            current_version = current[1] if current is not None else -1
            if expected is not None and expected != current_version:
                return self._fail(
                    ConditionalUpdateError(
                        f"{segment}[{key}]: expected v{expected}, "
                        f"found v{current_version}"
                    )
                )
        versions: Dict[str, int] = {}
        for key, (value, _) in updates.items():
            current = state.table.get(key)
            current_version = current[1] if current is not None else -1
            if value is None:
                state.table.pop(key, None)
                versions[key] = -1
            else:
                state.table[key] = (value, current_version + 1)
                versions[key] = current_version + 1
        op = TableUpdateOperation(segment, updates=dict(updates))
        state.length += op.serialized_size - OP_HEADER_SIZE
        self._count_op()

        def run():
            yield self.durable_log.add(op)
            return versions

        return self.sim.process(run())

    def table_get(self, segment: str, keys: List[str]) -> Dict[str, Tuple[Any, int]]:
        """Read table entries (key -> (value, version)); missing keys absent."""
        state = self._state(segment)
        if not state.is_table:
            raise StreamError(f"{segment} is not a table segment")
        return {key: state.table[key] for key in keys if key in state.table}

    def table_keys(self, segment: str) -> List[str]:
        state = self._state(segment)
        return sorted(state.table.keys())

    # ------------------------------------------------------------------
    # Apply (data-plane effects after WAL ack)
    # ------------------------------------------------------------------
    def _read_index(self, segment: str) -> SegmentReadIndex:
        index = self.read_indexes.get(segment)
        if index is None:
            index = SegmentReadIndex(segment, self.cache, self.cache_manager)
            self.read_indexes[segment] = index
        return index

    def _apply(self, op: Operation) -> None:
        if op.op_type is OperationType.APPEND:
            self._apply_append(op)  # type: ignore[arg-type]
        elif op.op_type is OperationType.DELETE:
            self._apply_delete(op.segment)
        elif op.op_type is OperationType.TRUNCATE:
            index = self.read_indexes.get(op.segment)
            if index is not None:
                index.truncate_below(op.offset)  # type: ignore[attr-defined]
            self.sim.process(self._drop_chunks(op.segment, op.offset))  # type: ignore[attr-defined]
        # CREATE / SEAL / TABLE_UPDATE / CHECKPOINT have no data-plane effect:
        # their metadata was updated at admission.
        state = self.segments.get(op.segment)
        if state is not None and op.op_type is OperationType.SEAL:
            self._complete_tail_waiters(op.segment, force_eos=True)

    def _apply_append(self, op: AppendOperation) -> None:
        if not self._recovering:
            self._unapplied_bytes = max(0, self._unapplied_bytes - op.payload.size)
        state = self.segments.get(op.segment)
        if state is None:
            return
        try:
            self._read_index(op.segment).append(op.offset, op.payload)
        except CacheFullError:
            self.cache_manager.make_room()
            self._read_index(op.segment).append(op.offset, op.payload)
        state.applied_length = max(state.applied_length, op.offset + op.payload.size)
        flushed = self.storage_writer.flushed_offset(op.segment)
        if op.offset + op.payload.size > flushed:
            self.storage_writer.add(
                op.segment, op.offset, op.payload, op.sequence_number
            )
        self._complete_tail_waiters(op.segment)
        # Full eviction scans are O(entries); amortize them.
        self._applies_since_evict += 1
        if (
            self._applies_since_evict >= 64
            or self.cache_manager.utilization > 0.95
        ):
            self._applies_since_evict = 0
            self.cache_manager.advance_generation()
            self.cache_manager.maybe_evict()
        self.storage_writer.release_check()

    def _apply_delete(self, segment: str) -> None:
        index = self.read_indexes.pop(segment, None)
        if index is not None:
            index.drop_all()
            self.cache_manager.unregister(index)
        self.sim.process(self._delete_chunks(segment))

    def _drop_chunks(self, segment: str, offset: int):
        yield self.storage_writer.truncate_segment(segment, offset)

    def _delete_chunks(self, segment: str):
        yield self.storage_writer.delete_segment(segment)

    def _replay(self, op: Operation) -> None:
        """Re-apply a recovered operation (metadata + data plane)."""
        if op.op_type is OperationType.CREATE:
            self.segments[op.segment] = SegmentState(
                name=op.segment, is_table=op.is_table  # type: ignore[attr-defined]
            )
            self.storage_writer.track_segment(op.segment)
        elif op.op_type is OperationType.APPEND:
            state = self.segments.get(op.segment)
            if state is None:
                return
            state.length = max(state.length, op.offset + op.payload.size)  # type: ignore[attr-defined]
            if op.writer_id and op.event_number >= 0:  # type: ignore[attr-defined]
                state.attributes[op.writer_id] = max(  # type: ignore[attr-defined]
                    state.attributes.get(op.writer_id, -1), op.event_number  # type: ignore[attr-defined]
                )
            self._apply_append(op)  # type: ignore[arg-type]
        elif op.op_type is OperationType.SEAL:
            state = self.segments.get(op.segment)
            if state is not None:
                state.sealed = True
        elif op.op_type is OperationType.TRUNCATE:
            state = self.segments.get(op.segment)
            if state is not None:
                state.start_offset = max(state.start_offset, op.offset)  # type: ignore[attr-defined]
        elif op.op_type is OperationType.DELETE:
            state = self.segments.get(op.segment)
            if state is not None:
                state.deleted = True
            self._apply_delete(op.segment)
        elif op.op_type is OperationType.TABLE_UPDATE:
            state = self.segments.get(op.segment)
            if state is None:
                return
            for key, (value, _) in op.updates.items():  # type: ignore[attr-defined]
                current = state.table.get(key)
                version = current[1] if current is not None else -1
                if value is None:
                    state.table.pop(key, None)
                else:
                    state.table[key] = (value, version + 1)
        # CHECKPOINT: nothing — an earlier checkpoint was already restored.

    # ------------------------------------------------------------------
    # Read path (§4.2)
    # ------------------------------------------------------------------
    def read(self, segment: str, offset: int, max_bytes: int, span=None) -> SimFuture:
        """Read up to ``max_bytes`` from ``offset``.

        Serves from cache when resident, fetches from LTS (with parallel
        read-ahead) when tiered out, or waits for new data (tail read)
        when at the segment's end.  Resolves with :class:`ReadResult`.
        """
        try:
            self._require_online()
            state = self._state(segment)
        except (ContainerOfflineError, SegmentNotFoundError) as exc:
            return self._fail(exc)
        if offset < state.start_offset:
            return self._fail(
                StreamError(f"read below truncation point of {segment}")
            )

        # Hot path: requested data is already applied and cache-resident
        # and tracing is off — serve synchronously, skipping the
        # per-request reader process.
        if span is None:
            available = state.applied_length - offset
            if available > 0:
                want = min(max_bytes, available)
                cached = self._read_index(segment).read_cached(offset, want)
                if cached is not None and cached.size > 0:
                    self._read_cache_hits.add()
                    self._read_cache_bytes.add(cached.size)
                    done = self.sim.future()
                    done.set_result(ReadResult(cached, offset))
                    return done
            elif self.config.serving.direct_tail_delivery:
                # Direct tail park: no reader process — the shared append
                # fan-out resolves this future with the ReadResult (or
                # end-of-segment) itself.  Cancellation goes through
                # cancel_tail_read().
                if state.sealed:
                    done = self.sim.future()
                    done.set_result(
                        ReadResult(Payload.empty(), offset, end_of_segment=True)
                    )
                    return done
                waiter = self.sim.future()
                waiters = self._tail_waiters.get(segment)
                if waiters is None:
                    waiters = self._tail_waiters[segment] = {}
                waiters[waiter] = (offset, max_bytes, True)
                return waiter

        def run():
            read_span = None
            if span is not None:
                read_span = span.child(
                    "container.read",
                    actor=f"container-{self.container_id}",
                    segment=segment,
                    offset=offset,
                )
            waited = False

            def done(source: str):
                if read_span is not None:
                    read_span.attrs["source"] = source
                    read_span.finish()

            try:
                while True:
                    state = self._state(segment)
                    available = state.applied_length - offset
                    if available <= 0:
                        if state.sealed:
                            done("eos")
                            return ReadResult(Payload.empty(), offset, end_of_segment=True)
                        waiter = self.sim.future()
                        waiters = self._tail_waiters.get(segment)
                        if waiters is None:
                            waiters = self._tail_waiters[segment] = {}
                        waiters[waiter] = (offset, max_bytes, False)
                        wait_from = self.sim.now if read_span is not None else 0.0
                        try:
                            wake = yield waiter
                        except BaseException:
                            # Reader detached mid-wait (interrupt) or the
                            # waiter failed: drop the registration so the
                            # wakeup list doesn't pin this future.
                            live = self._tail_waiters.get(segment)
                            if live is not None:
                                live.pop(waiter, None)
                            raise
                        waited = True
                        if read_span is not None:
                            read_span.component("tail_wait", self.sim.now - wait_from)
                        if wake is True:
                            done("eos")
                            return ReadResult(Payload.empty(), offset, end_of_segment=True)
                        if wake is not False:
                            # Shared fan-out delivered the payload directly.
                            self._read_cache_hits.add()
                            self._read_cache_bytes.add(wake.payload.size)
                            done("tail")
                            return wake
                        continue
                    want = min(max_bytes, available)
                    index = self._read_index(segment)
                    cached = index.read_cached(offset, want)
                    if cached is not None and cached.size > 0:
                        self._read_cache_hits.add()
                        self._read_cache_bytes.add(cached.size)
                        done("tail" if waited else "cache")
                        return ReadResult(cached, offset)
                    # Cache miss: fetch the chunk covering `offset` from LTS and
                    # prefetch the next chunks in parallel (Fig. 12).
                    self._read_cache_misses.add()
                    fetch_from = self.sim.now if read_span is not None else 0.0
                    yield from self._fetch_from_lts(segment, offset, read_span)
                    if read_span is not None:
                        read_span.component("lts", self.sim.now - fetch_from)
                    cached = index.read_cached(offset, want)
                    if cached is not None and cached.size > 0:
                        self.metrics.counter("read.lts_bytes").add(cached.size)
                        done("lts")
                        return ReadResult(cached, offset)
                    raise StreamError(
                        f"data unavailable at {segment}@{offset} "
                        f"(applied={state.applied_length}, "
                        f"flushed={self.storage_writer.flushed_offset(segment)})"
                    )
            finally:
                if read_span is not None and read_span.end is None:
                    read_span.finish()

        return self.sim.process(run())

    def _fetch_from_lts(self, segment: str, offset: int, read_span=None):
        chunks = self.storage_writer.chunks_for_range(segment, offset, 1)
        if not chunks:
            # Data not in a chunk: nothing to fetch (caller will fail).
            return
        index = self._read_index(segment)
        all_chunks = self.storage_writer.chunks.get(segment, [])
        position = all_chunks.index(chunks[0])
        coalesce = self.config.serving.coalesce_lts_fetches
        # Read-ahead in parallel (the Fig. 12 mechanism), best-effort: the
        # target chunk is mandatory; prefetched chunks are dropped rather
        # than evicting actively-served data from a full cache.
        readahead = all_chunks[position + 1 : position + 1 + self.config.readahead_chunks]
        for chunk in readahead:
            if index.cached_range_end(chunk.start_offset) is None:
                if coalesce and (segment, chunk.chunk_name) in self._inflight_fetches:
                    continue
                self.sim.process(self._prefetch(index, chunk))
        target = chunks[0]
        if coalesce:
            key = (segment, target.chunk_name)
            shared = self._inflight_fetches.get(key)
            if shared is not None:
                # Single-flight: join the fetch already in flight (a
                # concurrent reader's, or our own earlier read-ahead).
                self._read_coalesced.add()
                if read_span is not None:
                    read_span.annotate("lts-coalesced", chunk=target.chunk_name)
                yield shared
                return
            shared = self._inflight_fetches[key] = self.sim.future()
            try:
                if self.faults is not None:
                    extra = self.faults.lts_op(f"container-{self.container_id}")
                    if extra:
                        yield self.sim.timeout(extra)
                self._read_lts_ops.add()
                payload = yield self.storage_writer.lts.read_chunk(target.chunk_name)
                self.cache_manager.advance_generation()
                try:
                    index.insert_fetched(target.start_offset, payload)
                except CacheFullError:
                    self.cache_manager.make_room()
                    index.insert_fetched(target.start_offset, payload)
            except BaseException as exc:
                # Every coalesced waiter sees the leader's failure.
                if not shared.done:
                    shared.set_exception(exc)
                raise
            else:
                if not shared.done:
                    shared.set_result(None)
            finally:
                if self._inflight_fetches.get(key) is shared:
                    del self._inflight_fetches[key]
            return
        if self.faults is not None:
            extra = self.faults.lts_op(f"container-{self.container_id}")
            if extra:
                yield self.sim.timeout(extra)
        self._read_lts_ops.add()
        payload = yield self.storage_writer.lts.read_chunk(target.chunk_name)
        self.cache_manager.advance_generation()
        try:
            index.insert_fetched(target.start_offset, payload)
        except CacheFullError:
            self.cache_manager.make_room()
            index.insert_fetched(target.start_offset, payload)

    def _prefetch(self, index: SegmentReadIndex, chunk) -> "Generator":
        shared = None
        if self.config.serving.coalesce_lts_fetches:
            key = (index.segment, chunk.chunk_name)
            if key in self._inflight_fetches:
                return
            shared = self._inflight_fetches[key] = self.sim.future()
        try:
            if self.faults is not None:
                extra = self.faults.lts_op(f"container-{self.container_id}")
                if extra:
                    yield self.sim.timeout(extra)
            self._read_lts_ops.add()
            payload = yield self.storage_writer.lts.read_chunk(chunk.chunk_name)
            if index.cached_range_end(chunk.start_offset) is None:
                try:
                    index.insert_fetched(chunk.start_offset, payload)
                except CacheFullError:
                    if self.cache_manager.make_room():
                        try:
                            index.insert_fetched(chunk.start_offset, payload)
                        except CacheFullError:
                            pass  # cache too small for read-ahead; drop it
        except BaseException as exc:
            if shared is not None and not shared.done:
                shared.set_exception(exc)
            raise
        else:
            if shared is not None and not shared.done:
                shared.set_result(None)
        finally:
            if shared is not None and self._inflight_fetches.get(key) is shared:
                del self._inflight_fetches[key]

    def cancel_tail_read(self, segment: str, fut: SimFuture) -> None:
        """Drop a parked tail-read future (client cancelled the read)."""
        waiters = self._tail_waiters.get(segment)
        if waiters is not None:
            waiters.pop(fut, None)

    def _complete_tail_waiters(self, segment: str, force_eos: bool = False) -> None:
        waiters = self._tail_waiters.get(segment)
        if not waiters:
            return
        if force_eos:
            for fut, (offset, _max_bytes, direct) in waiters.items():
                if not fut.done:
                    if direct:
                        fut.set_result(
                            ReadResult(Payload.empty(), offset, end_of_segment=True)
                        )
                    else:
                        fut.set_result(True)
            waiters.clear()
            return
        state = self.segments.get(segment)
        length = state.applied_length if state is not None else 0
        ready = [
            (fut, offset, max_bytes, direct)
            for fut, (offset, max_bytes, direct) in waiters.items()
            if offset < length
        ]
        if not ready:
            return
        for fut, _, _, _ in ready:
            del waiters[fut]
        # Shared tail fan-out: every parked reader waits at (one of a
        # handful of) distinct offsets, so one append's payload is read
        # from the cache once per distinct (offset, want) and the same
        # ReadResult resolves every waiter — per-reader delivery work no
        # longer scales with payload size.  Wake order matches the old
        # per-waiter protocol (registration order), so event timing is
        # unchanged; a cache miss here falls back to the legacy
        # wake-and-retry protocol.
        index = self.read_indexes.get(segment)
        shared: Dict[Tuple[int, int], Optional[ReadResult]] = {}
        for fut, offset, max_bytes, direct in ready:
            if fut.done:
                continue
            key = (offset, min(max_bytes, length - offset))
            if key in shared:
                result = shared[key]
            else:
                result = None
                if index is not None:
                    cached = index.read_cached(offset, key[1])
                    if cached is not None and cached.size > 0:
                        result = ReadResult(cached, offset)
                shared[key] = result
            if result is not None:
                if direct:
                    # Process-backed waiters account the hit in their own
                    # wake branch; direct futures have no process.
                    self._read_cache_hits.add()
                    self._read_cache_bytes.add(result.payload.size)
                fut.set_result(result)
            elif direct:
                # Woken past the cache (rare: the run was evicted between
                # apply and fan-out) — fall back to a full read, chained
                # into the parked future.
                self._chain(self.read(segment, offset, max_bytes), fut)
            else:
                fut.set_result(False)

    @staticmethod
    def _chain(src: SimFuture, dst: SimFuture) -> None:
        def copy(f: SimFuture) -> None:
            if dst.done:
                return
            if f._exception is not None:
                dst.set_exception(f._exception)
            else:
                dst.set_result(f._value)

        src.add_callback(copy)

    # ------------------------------------------------------------------
    # Flush / truncation feedback
    # ------------------------------------------------------------------
    def _on_flush(self, segment: str, flushed_offset: int) -> None:
        self.metrics.counter("tier.flushes").add()

    def _on_truncation_candidate(self, flushed_sequence: int) -> None:
        if self._last_checkpoint_sequence < 0:
            return
        up_to = min(flushed_sequence, self._last_checkpoint_sequence - 1)
        if up_to >= 0:
            self.durable_log.truncate(up_to)

    # ------------------------------------------------------------------
    # Metadata checkpoints (§4.4)
    # ------------------------------------------------------------------
    def _count_op(self) -> None:
        self._ops_since_checkpoint += 1
        if self._ops_since_checkpoint >= self.config.checkpoint_interval_ops:
            self._take_checkpoint()

    def _checkpoint_timer(self):
        while self._online:
            yield self.sim.timeout(self.config.checkpoint_interval_time)
            if not self._online:
                return
            if self._ops_since_checkpoint > 0:
                self._take_checkpoint()

    def _take_checkpoint(self) -> None:
        if self._checkpoint_running or not self.durable_log.online:
            return
        self._checkpoint_running = True
        self._ops_since_checkpoint = 0
        op = MetadataCheckpointOperation(
            segment="",
            snapshot=self._snapshot(),
            snapshot_size=self.config.checkpoint_size,
        )
        fut = self.durable_log.add(op)

        def done(result: SimFuture) -> None:
            self._checkpoint_running = False
            if result.exception is None:
                self._last_checkpoint_sequence = op.sequence_number
                self.metrics.counter("checkpoints").add()
                # A fresh checkpoint may unlock WAL truncation.
                self._on_truncation_candidate(
                    self.storage_writer.truncation_sequence()
                )

        fut.add_callback(done)

    def _snapshot(self) -> dict:
        return {
            "segments": {
                name: copy.deepcopy(state) for name, state in self.segments.items()
            },
            "storage": self.storage_writer.snapshot(),
        }

    def _restore_snapshot(self, snapshot: dict) -> None:
        self.segments = {
            name: copy.deepcopy(state)
            for name, state in snapshot["segments"].items()
        }
        for state in self.segments.values():
            # applied state re-derives from replay; lengths in the snapshot
            # were speculative-at-admission and are authoritative.
            state.applied_length = min(state.applied_length, state.length)
        self.storage_writer.restore(snapshot["storage"])
        for segment in self.segments:
            self.storage_writer.track_segment(segment)

    # ------------------------------------------------------------------
    def segment_names(self) -> List[str]:
        return sorted(
            name for name, state in self.segments.items() if not state.deleted
        )
