"""The read index (§4.2).

"The read index is an essential component of the segment container that
provides a complete view of all the data in a segment, both from WAL and
LTS, without the reader having to know where such data resides."  Its
main data structure is a sorted index of entries per segment, indexed by
start offset and implemented with an AVL tree; entries carry the cache
address of their data plus usage metadata that drives eviction.

A read at the current end of a segment returns a *tail-read future* that
completes when new data is appended — the mechanism behind low-latency
tail reads (Fig. 8).

The :class:`CacheManager` is the serving tier's policy seam (DESIGN.md
§13): eviction order is pluggable (``generation`` — Pravega's native
scheme — or ``lru``), and admission of LTS-fetched runs is pluggable
(``always`` or ``second_touch``, with a ghost list so a re-fetched run
is admitted on its second life).  ``2q`` composes lru eviction with
second-touch admission.  The defaults reproduce the pre-serving-tier
behavior exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.avl import AvlTree
from repro.common.payload import Payload
from repro.pravega.container.cache import BlockCache, CacheFullError, NO_ADDRESS

__all__ = ["IndexEntry", "SegmentReadIndex", "CacheManager"]

#: an index entry stops growing past this size so eviction stays granular
MAX_ENTRY_BYTES = 1024 * 1024

#: ghost-list capacity: evicted-before-promotion fetch keys remembered
#: for second-touch admission across an eviction
GHOST_CAPACITY = 4096


@dataclass(slots=True)
class IndexEntry:
    """One contiguous run of segment bytes resident in the cache."""

    start_offset: int
    length: int
    cache_address: int
    #: recency stamp of the last access: the cache-manager generation
    #: (generation policy) or a monotonic access tick (lru policy)
    generation: int = 0
    #: False while on probation (second-touch admission): evicts before
    #: any admitted entry; promoted by a touch in a later generation
    admitted: bool = True
    #: cache-manager generation when the entry was inserted (promotion
    #: requires a touch *after* the inserting fetch's generation)
    born: int = 0

    @property
    def end_offset(self) -> int:
        return self.start_offset + self.length


class SegmentReadIndex:
    """Per-segment sorted index over cached data runs."""

    def __init__(self, segment: str, cache: BlockCache, manager: "CacheManager") -> None:
        self.segment = segment
        self.cache = cache
        self.manager = manager
        self._entries: AvlTree[int, IndexEntry] = AvlTree()
        #: highest offset covered by a contiguous tail of appends
        self._append_offset: Optional[int] = None
        self._tail_entry: Optional[IndexEntry] = None
        manager.register(self)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def append(self, offset: int, payload: Payload) -> None:
        """Record freshly appended segment bytes at ``offset``.

        Contiguous appends extend the current tail entry via the O(1)
        cache append; a new entry starts when the tail entry is full.
        Appended data is the tail working set: always admitted.
        """
        if payload.size == 0:
            return
        mgr = self.manager
        stamp = mgr.current_generation if mgr.generation_mode else mgr.next_tick()
        tail = self._tail_entry
        if (
            tail is not None
            and tail.end_offset == offset
            and tail.length + payload.size <= MAX_ENTRY_BYTES
        ):
            tail.cache_address = self.cache.append(tail.cache_address, payload)
            tail.length += payload.size
            tail.generation = stamp
        else:
            entry = IndexEntry(offset, payload.size, self.cache.insert(payload))
            entry.generation = stamp
            entry.born = mgr.current_generation
            self._entries.insert(offset, entry)
            self._tail_entry = entry
        self._append_offset = offset + payload.size

    def insert_fetched(self, offset: int, payload: Payload) -> None:
        """Insert data fetched from LTS (brought into the cache on read).

        Admission policy applies here: under ``second_touch`` the run
        starts on probation (evicts first) unless its key is in the
        ghost list — i.e. this is its second fetch.
        """
        if payload.size == 0:
            return
        # Skip insertion if an existing entry already covers the range start.
        existing = self._floor_covering(offset)
        if existing is not None:
            return
        mgr = self.manager
        entry = IndexEntry(offset, payload.size, self.cache.insert(payload))
        entry.generation = (
            mgr.current_generation if mgr.generation_mode else mgr.next_tick()
        )
        entry.born = mgr.current_generation
        entry.admitted = mgr.admit_fetch(self.segment, offset)
        self._entries.insert(offset, entry)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _floor_covering(self, offset: int) -> Optional[IndexEntry]:
        self.manager.avl_probes += 1
        found = self._entries.floor(offset)
        if found is None:
            return None
        entry = found[1]
        return entry if entry.start_offset <= offset < entry.end_offset else None

    def _touch(self, entry: IndexEntry, mgr: "CacheManager") -> None:
        if mgr.generation_mode:
            entry.generation = mgr.current_generation
        else:
            entry.generation = mgr.next_tick()
        if not entry.admitted and entry.born != mgr.current_generation:
            # Second touch in a later generation: off probation.
            entry.admitted = True
            mgr.promotions += 1

    def read_cached(self, offset: int, max_bytes: int) -> Optional[Payload]:
        """Contiguous cached data at ``offset`` (up to ``max_bytes``),
        or None if the first byte is not cached.

        Tail reads — by far the common case for streaming consumers —
        resolve against the O(1) tail entry without touching the AVL
        tree; ``CacheManager.tail_read_hits`` / ``avl_probes`` account
        for which path served each lookup.  The single-entry case (all
        tail reads, and every read inside one cached run) returns its
        payload slice directly without building a piece list.
        """
        mgr = self.manager
        tail = self._tail_entry
        if tail is not None and tail.start_offset <= offset < tail.end_offset:
            entry: Optional[IndexEntry] = tail
            mgr.tail_read_hits += 1
        else:
            entry = self._floor_covering(offset)
            if entry is None:
                return None
        self._touch(entry, mgr)
        start = offset - entry.start_offset
        end = min(entry.length, start + max_bytes)
        piece = self.cache.read_range(entry.cache_address, start, end, entry.length)
        taken = end - start
        if taken >= max_bytes or end < entry.length or entry is self._tail_entry:
            return piece
        cursor = entry.start_offset + end
        nxt = self._entries.ceiling(cursor)
        entry = nxt[1] if nxt is not None and nxt[1].start_offset == cursor else None
        if entry is None:
            return piece
        pieces: List[Payload] = [piece]
        while entry is not None and taken < max_bytes:
            self._touch(entry, mgr)
            start = cursor - entry.start_offset
            end = min(entry.length, start + (max_bytes - taken))
            pieces.append(
                self.cache.read_range(entry.cache_address, start, end, entry.length)
            )
            taken += end - start
            cursor = entry.start_offset + end
            if end < entry.length:
                break
            if entry is self._tail_entry:
                break  # nothing follows the tail entry
            nxt = self._entries.ceiling(cursor)
            entry = nxt[1] if nxt is not None and nxt[1].start_offset == cursor else None
        return Payload.concat(pieces)

    def cached_range_end(self, offset: int) -> Optional[int]:
        """End of the contiguous cached run containing ``offset``, or None."""
        entry = self._floor_covering(offset)
        return entry.end_offset if entry is not None else None

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def evictable_entries(self, flushed_below: int) -> List[IndexEntry]:
        """Entries safe to evict: fully persisted to LTS already."""
        candidates = []
        for _, entry in self._entries.items():
            if entry.end_offset <= flushed_below and entry is not self._tail_entry:
                candidates.append(entry)
        return candidates

    def evict_entry(self, entry: IndexEntry) -> int:
        self._entries.delete(entry.start_offset)
        if self._tail_entry is entry:
            self._tail_entry = None
        return self.cache.delete(entry.cache_address)

    def drop_all(self) -> None:
        """Release every cache block (segment deleted / container shutdown)."""
        for _, entry in list(self._entries.items()):
            self.cache.delete(entry.cache_address)
        self._entries = AvlTree()
        self._tail_entry = None

    def truncate_below(self, offset: int) -> int:
        """Evict entries entirely below ``offset`` (segment truncation)."""
        released = 0
        for _, entry in list(self._entries.items()):
            if entry.end_offset <= offset:
                released += self.evict_entry(entry)
        return released

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    def check_invariants(self) -> None:
        """Entries are sorted, non-overlapping, sizes match the cache."""
        previous_end = -1
        for key, entry in self._entries.items():
            assert key == entry.start_offset
            assert entry.start_offset >= previous_end, "overlapping entries"
            assert self.cache.entry_size(entry.cache_address) == entry.length
            previous_end = entry.end_offset


class CacheManager:
    """Eviction and admission across all read indexes of a container.

    Mirrors Pravega's cache manager: every access stamps the entry with
    the current generation; when utilization crosses the target, the
    oldest evictable entries are freed first.  Two policy axes plug in:

    * ``eviction`` — ``generation`` (default; the original behavior) or
      ``lru`` (exact access-order via a monotonic tick).
    * ``admission`` — ``always`` (default) or ``second_touch``: an
      LTS-fetched run starts on *probation* and evicts before any
      admitted entry; it is admitted by a touch in a later generation,
      or immediately when its key sits in the ghost list of recently
      evicted probationers (its second fetch).  A one-pass mass replay
      therefore cycles through probationary slots and cannot evict the
      tail working set.

    ``eviction="2q"`` is shorthand for lru + second_touch.
    """

    def __init__(
        self,
        cache: BlockCache,
        target_utilization: float = 0.85,
        eviction: str = "generation",
        admission: str = "always",
    ) -> None:
        if eviction == "2q":
            eviction, admission = "lru", "second_touch"
        if eviction not in ("generation", "lru"):
            raise ValueError(f"unknown eviction policy: {eviction!r}")
        if admission not in ("always", "second_touch"):
            raise ValueError(f"unknown admission policy: {admission!r}")
        self.cache = cache
        self.target_utilization = target_utilization
        self.eviction = eviction
        self.admission = admission
        #: True for the generation policy: entries are stamped with the
        #: coarse generation; False stamps an exact lru access tick
        self.generation_mode = eviction == "generation"
        self.current_generation = 0
        self._tick = 0
        #: lookups served by the O(1) tail entry (no tree probe)
        self.tail_read_hits = 0
        #: lookups that went through an AVL floor probe
        self.avl_probes = 0
        #: probationary entries promoted by a second touch
        self.promotions = 0
        #: fetches admitted straight from the ghost list
        self.ghost_hits = 0
        #: entries evicted (total / while still on probation)
        self.evicted_entries = 0
        self.evicted_probation = 0
        self._indexes: List[SegmentReadIndex] = []
        #: optional metrics Counter mirroring ``evicted_entries``
        self.eviction_counter = None
        #: FIFO ghost list of evicted-before-promotion fetch keys
        self._ghosts: Dict[Tuple[str, int], None] = {}
        #: callback answering "flushed-to-LTS offset" per segment name
        self.flushed_offset_provider = lambda segment: 0

    def register(self, index: SegmentReadIndex) -> None:
        self._indexes.append(index)

    def unregister(self, index: SegmentReadIndex) -> None:
        if index in self._indexes:
            self._indexes.remove(index)

    def advance_generation(self) -> None:
        self.current_generation += 1

    def next_tick(self) -> int:
        self._tick += 1
        return self._tick

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admit_fetch(self, segment: str, offset: int) -> bool:
        """Should this LTS-fetched run bypass probation?"""
        if self.admission == "always":
            return True
        key = (segment, offset)
        if key in self._ghosts:
            del self._ghosts[key]
            self.ghost_hits += 1
            return True
        return False

    def _remember_ghost(self, segment: str, offset: int) -> None:
        ghosts = self._ghosts
        ghosts[segment, offset] = None
        if len(ghosts) > GHOST_CAPACITY:
            del ghosts[next(iter(ghosts))]

    @property
    def utilization(self) -> float:
        capacity = self.cache.spec.max_blocks
        return self.cache.used_blocks / capacity if capacity else 0.0

    def maybe_evict(self) -> int:
        """Evict entries until below target utilization.

        Probationary entries go first (in recency order), then admitted
        entries by generation/tick.  Under the generation policy,
        admitted entries touched in the *current* generation are never
        evicted: they are being actively served (prevents a fetch from
        evicting the chunk it just brought in).
        """
        if self.utilization <= self.target_utilization:
            return 0
        generation_mode = self.generation_mode
        current = self.current_generation
        candidates: List[Tuple[Tuple[bool, int], SegmentReadIndex, IndexEntry]] = []
        for index in self._indexes:
            flushed = self.flushed_offset_provider(index.segment)
            for entry in index.evictable_entries(flushed):
                # Entries touched in the current generation are being
                # actively served (a fetch must not evict the chunk it
                # just brought in — probationary or not).
                if generation_mode and entry.generation >= current:
                    continue
                candidates.append(((entry.admitted, entry.generation), index, entry))
        candidates.sort(key=lambda item: item[0])
        released = 0
        evicted = 0
        for _, index, entry in candidates:
            if self.utilization <= self.target_utilization:
                break
            if not entry.admitted:
                self.evicted_probation += 1
                self._remember_ghost(index.segment, entry.start_offset)
            evicted += 1
            released += index.evict_entry(entry)
        if evicted:
            self.evicted_entries += evicted
            if self.eviction_counter is not None:
                self.eviction_counter.add(evicted)
        return released

    def make_room(self) -> bool:
        """Emergency eviction when an insert hits CacheFullError."""
        before = self.cache.used_blocks
        saved_target = self.target_utilization
        self.target_utilization = self.utilization / 2.0
        try:
            self.maybe_evict()
        finally:
            self.target_utilization = saved_target
        return self.cache.used_blocks < before
