"""The read index (§4.2).

"The read index is an essential component of the segment container that
provides a complete view of all the data in a segment, both from WAL and
LTS, without the reader having to know where such data resides."  Its
main data structure is a sorted index of entries per segment, indexed by
start offset and implemented with an AVL tree; entries carry the cache
address of their data plus usage metadata that drives eviction.

A read at the current end of a segment returns a *tail-read future* that
completes when new data is appended — the mechanism behind low-latency
tail reads (Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.avl import AvlTree
from repro.common.payload import Payload
from repro.pravega.container.cache import BlockCache, CacheFullError, NO_ADDRESS

__all__ = ["IndexEntry", "SegmentReadIndex", "CacheManager"]

#: an index entry stops growing past this size so eviction stays granular
MAX_ENTRY_BYTES = 1024 * 1024


@dataclass
class IndexEntry:
    """One contiguous run of segment bytes resident in the cache."""

    start_offset: int
    length: int
    cache_address: int
    #: cache-manager generation of the last access (eviction heuristic)
    generation: int = 0

    @property
    def end_offset(self) -> int:
        return self.start_offset + self.length


class SegmentReadIndex:
    """Per-segment sorted index over cached data runs."""

    def __init__(self, segment: str, cache: BlockCache, manager: "CacheManager") -> None:
        self.segment = segment
        self.cache = cache
        self.manager = manager
        self._entries: AvlTree[int, IndexEntry] = AvlTree()
        #: highest offset covered by a contiguous tail of appends
        self._append_offset: Optional[int] = None
        self._tail_entry: Optional[IndexEntry] = None
        manager.register(self)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def append(self, offset: int, payload: Payload) -> None:
        """Record freshly appended segment bytes at ``offset``.

        Contiguous appends extend the current tail entry via the O(1)
        cache append; a new entry starts when the tail entry is full.
        """
        if payload.size == 0:
            return
        tail = self._tail_entry
        if (
            tail is not None
            and tail.end_offset == offset
            and tail.length + payload.size <= MAX_ENTRY_BYTES
        ):
            tail.cache_address = self.cache.append(tail.cache_address, payload)
            tail.length += payload.size
            tail.generation = self.manager.current_generation
        else:
            entry = IndexEntry(offset, payload.size, self.cache.insert(payload))
            entry.generation = self.manager.current_generation
            self._entries.insert(offset, entry)
            self._tail_entry = entry
        self._append_offset = offset + payload.size

    def insert_fetched(self, offset: int, payload: Payload) -> None:
        """Insert data fetched from LTS (brought into the cache on read)."""
        if payload.size == 0:
            return
        # Skip insertion if an existing entry already covers the range start.
        existing = self._floor_covering(offset)
        if existing is not None:
            return
        entry = IndexEntry(offset, payload.size, self.cache.insert(payload))
        entry.generation = self.manager.current_generation
        self._entries.insert(offset, entry)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _floor_covering(self, offset: int) -> Optional[IndexEntry]:
        self.manager.avl_probes += 1
        found = self._entries.floor(offset)
        if found is None:
            return None
        entry = found[1]
        return entry if entry.start_offset <= offset < entry.end_offset else None

    def read_cached(self, offset: int, max_bytes: int) -> Optional[Payload]:
        """Contiguous cached data at ``offset`` (up to ``max_bytes``),
        or None if the first byte is not cached.

        Tail reads — by far the common case for streaming consumers —
        resolve against the O(1) tail entry without touching the AVL
        tree; ``CacheManager.tail_read_hits`` / ``avl_probes`` account
        for which path served each lookup.
        """
        tail = self._tail_entry
        if tail is not None and tail.start_offset <= offset < tail.end_offset:
            entry: Optional[IndexEntry] = tail
            self.manager.tail_read_hits += 1
        else:
            entry = self._floor_covering(offset)
            if entry is None:
                return None
        pieces: List[Payload] = []
        taken = 0
        cursor = offset
        while entry is not None and taken < max_bytes:
            entry.generation = self.manager.current_generation
            start = cursor - entry.start_offset
            end = min(entry.length, start + (max_bytes - taken))
            pieces.append(
                self.cache.read_range(entry.cache_address, start, end, entry.length)
            )
            taken += end - start
            cursor = entry.start_offset + end
            if end < entry.length:
                break
            if entry is self._tail_entry:
                break  # nothing follows the tail entry
            nxt = self._entries.ceiling(cursor)
            entry = nxt[1] if nxt is not None and nxt[1].start_offset == cursor else None
        if len(pieces) == 1:
            return pieces[0]
        return Payload.concat(pieces)

    def cached_range_end(self, offset: int) -> Optional[int]:
        """End of the contiguous cached run containing ``offset``, or None."""
        entry = self._floor_covering(offset)
        return entry.end_offset if entry is not None else None

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def evictable_entries(self, flushed_below: int) -> List[IndexEntry]:
        """Entries safe to evict: fully persisted to LTS already."""
        candidates = []
        for _, entry in self._entries.items():
            if entry.end_offset <= flushed_below and entry is not self._tail_entry:
                candidates.append(entry)
        return candidates

    def evict_entry(self, entry: IndexEntry) -> int:
        self._entries.delete(entry.start_offset)
        if self._tail_entry is entry:
            self._tail_entry = None
        return self.cache.delete(entry.cache_address)

    def drop_all(self) -> None:
        """Release every cache block (segment deleted / container shutdown)."""
        for _, entry in list(self._entries.items()):
            self.cache.delete(entry.cache_address)
        self._entries = AvlTree()
        self._tail_entry = None

    def truncate_below(self, offset: int) -> int:
        """Evict entries entirely below ``offset`` (segment truncation)."""
        released = 0
        for _, entry in list(self._entries.items()):
            if entry.end_offset <= offset:
                released += self.evict_entry(entry)
        return released

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    def check_invariants(self) -> None:
        """Entries are sorted, non-overlapping, sizes match the cache."""
        previous_end = -1
        for key, entry in self._entries.items():
            assert key == entry.start_offset
            assert entry.start_offset >= previous_end, "overlapping entries"
            assert self.cache.entry_size(entry.cache_address) == entry.length
            previous_end = entry.end_offset


class CacheManager:
    """Generation-based eviction across all read indexes of a container.

    Mirrors Pravega's cache manager: every access stamps the entry with
    the current generation; when utilization crosses the target, the
    oldest-generation evictable entries are freed first.
    """

    def __init__(self, cache: BlockCache, target_utilization: float = 0.85) -> None:
        self.cache = cache
        self.target_utilization = target_utilization
        self.current_generation = 0
        #: lookups served by the O(1) tail entry (no tree probe)
        self.tail_read_hits = 0
        #: lookups that went through an AVL floor probe
        self.avl_probes = 0
        self._indexes: List[SegmentReadIndex] = []
        #: callback answering "flushed-to-LTS offset" per segment name
        self.flushed_offset_provider = lambda segment: 0

    def register(self, index: SegmentReadIndex) -> None:
        self._indexes.append(index)

    def unregister(self, index: SegmentReadIndex) -> None:
        if index in self._indexes:
            self._indexes.remove(index)

    def advance_generation(self) -> None:
        self.current_generation += 1

    @property
    def utilization(self) -> float:
        capacity = self.cache.spec.max_blocks
        return self.cache.used_blocks / capacity if capacity else 0.0

    def maybe_evict(self) -> int:
        """Evict oldest evictable entries until below target utilization.

        Entries touched in the *current* generation are never evicted:
        they are being actively served (prevents a fetch from evicting
        the chunk it just brought in).
        """
        if self.utilization <= self.target_utilization:
            return 0
        candidates: List[Tuple[int, SegmentReadIndex, IndexEntry]] = []
        for index in self._indexes:
            flushed = self.flushed_offset_provider(index.segment)
            for entry in index.evictable_entries(flushed):
                if entry.generation >= self.current_generation:
                    continue
                candidates.append((entry.generation, index, entry))
        candidates.sort(key=lambda item: item[0])
        released = 0
        for _, index, entry in candidates:
            if self.utilization <= self.target_utilization:
                break
            released += index.evict_entry(entry)
        return released

    def make_room(self) -> bool:
        """Emergency eviction when an insert hits CacheFullError."""
        before = self.cache.used_blocks
        saved_target = self.target_utilization
        self.target_utilization = self.utilization / 2.0
        try:
            self.maybe_evict()
        finally:
            self.target_utilization = saved_target
        return self.cache.used_blocks < before
