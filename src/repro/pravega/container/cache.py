"""The segment store's block cache (§4.2, Fig. 4).

Designed from scratch for append-heavy streaming workloads: traditional
caches treat each entry as an immutable blob, so appending an event would
need either its own entry or a read-modify-write.  Instead:

* The cache is divided into equal-sized **cache blocks**, each uniquely
  addressable with a 32-bit pointer.
* Blocks are **daisy-chained** to form cache entries; each block points to
  the block immediately *before* it in the chain, and the address of an
  entry is the address of its **last** block — so an append can locate the
  tail in O(1) and either fill remaining capacity in place or link a fresh
  block.
* Blocks live in pre-allocated **cache buffers** (e.g. a 2 MB buffer holds
  512 4 KB blocks); empty blocks are chained in a per-buffer free list
  (small concurrency domain), and a queue of buffers-with-available-blocks
  provides O(1) allocation across buffers.

Block content here is tracked as :class:`Payload` fragments per block, so
the layout arithmetic (fills, chains, free lists) is exactly the paper's
while synthetic benchmark payloads cost no real memory.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.common.errors import ReproError
from repro.common.payload import Payload

__all__ = ["CacheSpec", "BlockCache", "CacheFullError", "NO_ADDRESS"]

NO_ADDRESS = -1


def _add_fragment(fragments: List[Payload], piece: Payload) -> None:
    """Append ``piece`` to a block's fragment list, coalescing synthetic
    runs: two adjacent content-free fragments are indistinguishable from
    one of the combined size, so benchmark blocks hold a single fragment
    instead of one per append (which made reconstruction O(appends))."""
    if fragments:
        last = fragments[-1]
        if last.content is None and piece.content is None:
            fragments[-1] = Payload._trusted(last.size + piece.size, None)
            return
    fragments.append(piece)


class CacheFullError(ReproError):
    """No free blocks remain; the caller should evict and retry."""


@dataclass(frozen=True)
class CacheSpec:
    block_size: int = 4096
    blocks_per_buffer: int = 512  # 2 MB buffers
    max_buffers: int = 64  # 128 MB cache by default
    #: buffers may temporarily overflow the target by this factor so that
    #: appends of not-yet-tiered (pinned, unevictable) data never fail;
    #: the container throttles admission while the cache is overflowing
    overflow_factor: float = 1.5

    @property
    def max_blocks(self) -> int:
        return self.blocks_per_buffer * self.max_buffers

    @property
    def hard_max_buffers(self) -> int:
        return max(int(self.max_buffers * self.overflow_factor), self.max_buffers + 1)

    @property
    def capacity_bytes(self) -> int:
        return self.max_blocks * self.block_size


class _Buffer:
    """One contiguous region: block metadata + per-block payload fragments."""

    __slots__ = ("index", "used", "length", "prev", "next_free", "free_head", "free_count", "fragments")

    def __init__(self, index: int, blocks: int) -> None:
        self.index = index
        self.used = [False] * blocks
        self.length = [0] * blocks
        self.prev = [NO_ADDRESS] * blocks
        self.next_free = [i + 1 for i in range(blocks)]
        self.next_free[-1] = NO_ADDRESS
        self.free_head = 0
        self.free_count = blocks
        self.fragments: List[Optional[List[Payload]]] = [None] * blocks

    def allocate(self) -> int:
        block = self.free_head
        assert block != NO_ADDRESS
        self.free_head = self.next_free[block]
        self.next_free[block] = NO_ADDRESS
        self.used[block] = True
        self.length[block] = 0
        self.prev[block] = NO_ADDRESS
        self.fragments[block] = []
        self.free_count -= 1
        return block

    def free(self, block: int) -> None:
        assert self.used[block]
        self.used[block] = False
        self.length[block] = 0
        self.prev[block] = NO_ADDRESS
        self.fragments[block] = None
        self.next_free[block] = self.free_head
        self.free_head = block
        self.free_count += 1


class BlockCache:
    """The Fig. 4 cache: buffers of daisy-chained blocks."""

    def __init__(self, spec: Optional[CacheSpec] = None) -> None:
        self.spec = spec or CacheSpec()
        self._buffers: List[_Buffer] = []
        #: queue of buffer indices that have free blocks (Fig. 4's
        #: "queue of cache buffers with available blocks")
        self._available: Deque[int] = deque()
        self._used_blocks = 0
        self.inserts = 0
        self.appends = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # Address arithmetic: addr = buffer_index * blocks_per_buffer + block
    # ------------------------------------------------------------------
    def _split(self, address: int) -> tuple[_Buffer, int]:
        buffer_index, block = divmod(address, self.spec.blocks_per_buffer)
        if not (0 <= buffer_index < len(self._buffers)):
            raise ReproError(f"bad cache address {address}")
        buffer = self._buffers[buffer_index]
        if not buffer.used[block]:
            raise ReproError(f"cache address {address} points at a free block")
        return buffer, block

    def _join(self, buffer: _Buffer, block: int) -> int:
        return buffer.index * self.spec.blocks_per_buffer + block

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    @property
    def used_blocks(self) -> int:
        return self._used_blocks

    @property
    def used_bytes(self) -> int:
        return self._used_blocks * self.spec.block_size

    @property
    def free_blocks(self) -> int:
        return self.spec.max_blocks - self._used_blocks

    @property
    def overflowing(self) -> bool:
        """Above the target capacity (ingestion should be throttled)."""
        return self._used_blocks > self.spec.max_blocks

    def _allocate_block(self) -> tuple[_Buffer, int]:
        while self._available:
            buffer = self._buffers[self._available[0]]
            if buffer.free_count > 0:
                block = buffer.allocate()
                if buffer.free_count == 0:
                    self._available.popleft()
                self._used_blocks += 1
                return buffer, block
            self._available.popleft()
        if len(self._buffers) < self.spec.hard_max_buffers:
            buffer = _Buffer(len(self._buffers), self.spec.blocks_per_buffer)
            self._buffers.append(buffer)
            self._available.append(buffer.index)
            return self._allocate_block()
        raise CacheFullError(
            f"cache full: {self._used_blocks} blocks "
            f"(target {self.spec.max_blocks}, hard cap reached)"
        )

    def _release_block(self, buffer: _Buffer, block: int) -> None:
        had_free = buffer.free_count > 0
        buffer.free(block)
        self._used_blocks -= 1
        if not had_free:
            self._available.append(buffer.index)

    # ------------------------------------------------------------------
    # Entry operations
    # ------------------------------------------------------------------
    def insert(self, payload: Payload) -> int:
        """Store a new entry; returns its address (the last block's)."""
        self.inserts += 1
        address = NO_ADDRESS
        remaining = payload
        offset = 0
        block_size = self.spec.block_size
        while True:
            buffer, block = self._allocate_block()
            take = min(block_size, payload.size - offset)
            if take > 0:
                _add_fragment(
                    buffer.fragments[block], payload.slice(offset, offset + take)
                )
            buffer.length[block] = take
            buffer.prev[block] = address
            address = self._join(buffer, block)
            offset += take
            if offset >= payload.size:
                return address

    def append(self, address: int, payload: Payload) -> int:
        """Append to an existing entry; returns the (possibly new) address.

        O(1) to locate the tail: the entry's address *is* its last block.
        """
        self.appends += 1
        buffer, block = self._split(address)
        block_size = self.spec.block_size
        offset = 0
        # Fill remaining capacity of the last block in place.
        space = block_size - buffer.length[block]
        if space > 0 and payload.size > 0:
            take = min(space, payload.size)
            _add_fragment(buffer.fragments[block], payload.slice(0, take))
            buffer.length[block] += take
            offset = take
        current = address
        while offset < payload.size:
            new_buffer, new_block = self._allocate_block()
            take = min(block_size, payload.size - offset)
            _add_fragment(
                new_buffer.fragments[new_block],
                payload.slice(offset, offset + take),
            )
            new_buffer.length[new_block] = take
            new_buffer.prev[new_block] = current
            current = self._join(new_buffer, new_block)
            offset += take
        return current

    def get(self, address: int) -> Payload:
        """Reconstruct the whole entry by walking the chain backwards."""
        pieces: List[Payload] = []
        current = address
        while current != NO_ADDRESS:
            buffer, block = self._split(current)
            frags = buffer.fragments[block]
            pieces.append(frags[0] if len(frags) == 1 else Payload.concat(frags))
            current = buffer.prev[block]
        pieces.reverse()
        return Payload.concat(pieces)

    def read_range(self, address: int, start: int, end: int, length: int) -> Payload:
        """Bytes ``[start, end)`` of the entry at ``address``, whose total
        size is ``length``.

        The chain is addressed from its *last* block, so the walk visits
        only the suffix overlapping the range — a tail read of an entry
        touches O(range / block_size) blocks instead of reconstructing
        the whole entry as :meth:`get` + slice would.
        """
        if not (0 <= start <= end <= length):
            raise ReproError(f"bad range [{start}, {end}) of {length} bytes")
        if start == end:
            return Payload.empty()
        pieces: List[Payload] = []
        current = address
        block_end = length
        while current != NO_ADDRESS and block_end > start:
            buffer, block = self._split(current)
            blen = buffer.length[block]
            block_start = block_end - blen
            if blen and block_start < end:
                lo = start - block_start if start > block_start else 0
                hi = blen if end >= block_end else end - block_start
                frags = buffer.fragments[block]
                if len(frags) == 1:
                    frag = frags[0]
                    piece = frag if lo == 0 and hi == blen else frag.slice(lo, hi)
                else:
                    piece = Payload.concat(frags).slice(lo, hi)
                pieces.append(piece)
            current = buffer.prev[block]
            block_end = block_start
        if len(pieces) == 1:
            return pieces[0]
        pieces.reverse()
        return Payload.concat(pieces)

    def entry_size(self, address: int) -> int:
        total = 0
        current = address
        while current != NO_ADDRESS:
            buffer, block = self._split(current)
            total += buffer.length[block]
            current = buffer.prev[block]
        return total

    def delete(self, address: int) -> int:
        """Free every block of the entry; returns bytes released."""
        released = 0
        current = address
        while current != NO_ADDRESS:
            buffer, block = self._split(current)
            previous = buffer.prev[block]
            released += buffer.length[block]
            self._release_block(buffer, block)
            current = previous
        self.evictions += 1
        return released

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Free lists and used blocks partition each buffer; chains acyclic."""
        for buffer in self._buffers:
            free_seen = set()
            cursor = buffer.free_head
            while cursor != NO_ADDRESS:
                assert cursor not in free_seen, "free list cycle"
                assert not buffer.used[cursor], "used block on free list"
                free_seen.add(cursor)
                cursor = buffer.next_free[cursor]
            assert len(free_seen) == buffer.free_count
            used = sum(1 for u in buffer.used if u)
            assert used + buffer.free_count == self.spec.blocks_per_buffer
