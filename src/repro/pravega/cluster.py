"""One-call Pravega deployment matching Table 1.

The paper's deployment: one controller (m5.large), three combined
Segment Store + Bookie instances (i3.4xlarge, one NVMe journal drive
each), Zookeeper, and an LTS backend (AWS EFS).  ``PravegaCluster.build``
assembles the simulated equivalent and exposes client factories.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.common.metrics import MetricsRegistry
from repro.bookkeeper.bookie import Bookie
from repro.bookkeeper.client import BookKeeperCluster
from repro.lts import (
    FileSystemLTS,
    InMemoryLTS,
    LongTermStorage,
    LtsSpec,
    NoOpLTS,
    ObjectStoreLTS,
)
from repro.pravega.client.controller_client import ControllerClient
from repro.pravega.client.reader import EventStreamReader, ReaderConfig
from repro.pravega.client.reader_group import ReaderGroup
from repro.pravega.client.state_synchronizer import StateSynchronizer
from repro.pravega.client.writer import EventStreamWriter, WriterConfig
from repro.pravega.controller import Controller, ControllerConfig
from repro.pravega.segment_store import (
    SegmentStore,
    SegmentStoreCluster,
    SegmentStoreConfig,
)
from repro.sim.core import SimFuture, Simulator
from repro.sim.disk import Disk, DiskSpec
from repro.sim.network import Network, NetworkSpec
from repro.zookeeper.service import ZookeeperService

__all__ = ["PravegaClusterConfig", "PravegaCluster"]


@dataclass(frozen=True)
class PravegaClusterConfig:
    num_segment_stores: int = 3
    num_containers: int = 8
    #: "efs" (Table 1 default), "s3", "noop" (§5.4 test feature), "memory"
    lts_kind: str = "efs"
    #: Bookkeeper journal fsync (False = the Fig. 5 "no flush" variant)
    journal_sync: bool = True
    store: SegmentStoreConfig = field(default_factory=SegmentStoreConfig)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    disk: DiskSpec = field(default_factory=DiskSpec)
    network: NetworkSpec = field(default_factory=NetworkSpec)
    #: optional override for the LTS performance envelope
    lts_spec: Optional["LtsSpec"] = None
    #: prefix for every host name ("east:" gives "east:segmentstore-0");
    #: lets several clusters coexist in one simulation (repro.geo regions)
    #: with globally unique node names for fault registration
    host_prefix: str = ""


class PravegaCluster:
    """A running simulated Pravega deployment."""

    def __init__(
        self,
        sim: Simulator,
        config: PravegaClusterConfig,
        network: Network,
        zk_service: ZookeeperService,
        bk_cluster: BookKeeperCluster,
        lts: LongTermStorage,
        store_cluster: SegmentStoreCluster,
        controller: Controller,
        metrics: MetricsRegistry,
    ) -> None:
        self.sim = sim
        self.config = config
        self.network = network
        self.zk_service = zk_service
        self.bk_cluster = bk_cluster
        self.lts = lts
        self.store_cluster = store_cluster
        self.controller = controller
        self.metrics = metrics

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, sim: Simulator, config: Optional[PravegaClusterConfig] = None
    ) -> "PravegaCluster":
        config = config or PravegaClusterConfig()
        metrics = MetricsRegistry()
        network = Network(sim, config.network)
        zk_service = ZookeeperService(sim, network)
        bk_cluster = BookKeeperCluster(sim, network)
        lts = cls._make_lts(sim, config.lts_kind, config.lts_spec)
        store_cluster = SegmentStoreCluster(
            sim, zk_service, config.num_containers
        )
        for i in range(config.num_segment_stores):
            host = f"{config.host_prefix}segmentstore-{i}"
            # Bookie colocated with the segment store (Table 1), sharing
            # the host but with a dedicated journal drive.
            disk = Disk(sim, config.disk)
            bookie = Bookie(sim, host, disk, journal_sync=config.journal_sync)
            bk_cluster.add_bookie(bookie)
            store = SegmentStore(
                sim, host, network, bk_cluster, zk_service, lts, config.store, metrics
            )
            store_cluster.add_store(store)
        controller = Controller(
            sim,
            network,
            store_cluster,
            f"{config.host_prefix}controller",
            config.controller,
            metrics,
        )
        return cls(
            sim,
            config,
            network,
            zk_service,
            bk_cluster,
            lts,
            store_cluster,
            controller,
            metrics,
        )

    @staticmethod
    def _make_lts(
        sim: Simulator, kind: str, spec: Optional["LtsSpec"] = None
    ) -> LongTermStorage:
        if kind == "efs":
            return FileSystemLTS(sim, spec)
        if kind == "s3":
            return ObjectStoreLTS(sim, spec)
        if kind == "noop":
            return NoOpLTS(sim)
        if kind == "memory":
            return InMemoryLTS(sim)
        raise ValueError(f"unknown LTS kind: {kind}")

    def start(self) -> SimFuture:
        """Boot the data plane, then the control plane."""

        def run():
            yield self.store_cluster.bootstrap()
            yield self.controller.bootstrap()

        return self.sim.process(run())

    # ------------------------------------------------------------------
    # Client factories
    # ------------------------------------------------------------------
    @property
    def stores(self) -> Dict[str, SegmentStore]:
        return self.store_cluster.stores

    def controller_client(self, host: str) -> ControllerClient:
        return ControllerClient(self.controller, host)

    def create_writer(
        self,
        host: str,
        scope: str,
        stream: str,
        config: Optional[WriterConfig] = None,
        writer_id: Optional[str] = None,
    ) -> EventStreamWriter:
        return EventStreamWriter(
            self.sim,
            self.controller_client(host),
            self.stores,
            scope,
            stream,
            host,
            config,
            writer_id,
        )

    def create_reader_group(self, host: str, name: str, scope: str, stream: str) -> SimFuture:
        """Resolves with a :class:`ReaderGroup`."""
        segment = f"{scope}/_readergroups/{name}"
        synchronizer = StateSynchronizer(
            self.sim,
            self.stores,
            self.store_cluster.store_for_segment,
            segment,
            host,
        )
        return ReaderGroup.create(
            self.sim, name, self.controller_client(host), synchronizer, scope, stream
        )

    def create_reader(
        self,
        host: str,
        reader_id: str,
        group: ReaderGroup,
        config: Optional[ReaderConfig] = None,
    ) -> EventStreamReader:
        return EventStreamReader(self.sim, reader_id, group, self.stores, host, config)

    def create_key_value_table(
        self, host: str, scope: str, name: str, partitions: int = 1
    ) -> SimFuture:
        """Create a key-value table (§2.2); resolves with the client handle."""
        from repro.pravega.client.tables import KeyValueTable

        table = KeyValueTable(
            self.sim,
            self.stores,
            self.store_cluster.store_for_segment,
            scope,
            name,
            host,
            partitions,
        )

        def run():
            yield table.create()
            return table

        return self.sim.process(run())
