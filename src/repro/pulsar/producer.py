"""Pulsar producer: client-side time/size batching, on or off.

"Pulsar and Kafka clients implement a batching mechanism that can be
parameterized via 'knobs' ... The goal of this feature is to improve a
producer's throughput for small messages, despite inducing extra latency
in scenarios where the workload is not throughput-oriented" (§5.1) — the
dichotomy of Fig. 6a: the Pulsar producer "is able to target either low
latency or high throughput, but not both."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.hashing import stable_hash64
from repro.common.payload import Payload
from repro.sim.core import SimFuture, Simulator
from repro.sim.resources import FifoServer
from repro.pulsar.broker import PulsarCluster

__all__ = ["PulsarProducerConfig", "PulsarProducer"]


@dataclass(frozen=True)
class PulsarProducerConfig:
    #: enableBatching
    batching: bool = True
    #: batchingMaxPublishDelay (the paper uses 1 ms; §5.6 also tries 10 ms)
    batch_delay: float = 1e-3
    #: batchingMaxBytes (the paper uses 128 KB)
    batch_size: int = 128 * 1024
    #: maxPendingMessages per partition
    max_pending: int = 1000
    per_event_cpu: float = 0.5e-6
    #: fixed client CPU per publish request
    per_request_cpu: float = 25e-6
    cpu_bandwidth: float = 2e9


@dataclass(slots=True)
class _Record:
    size: int
    count: int
    future: SimFuture
    #: root trace span ("pulsar.send"), None when tracing is off
    span: Optional[object] = None


@dataclass(slots=True)
class _OpenBatch:
    records: List[_Record] = field(default_factory=list)
    size: int = 0
    closed: bool = False


class PulsarProducer:
    """One producer client: batching (or not) + publish pipeline."""
    _counter = 0

    def __init__(
        self,
        sim: Simulator,
        cluster: PulsarCluster,
        topic: str,
        host: str,
        config: Optional[PulsarProducerConfig] = None,
    ) -> None:
        self.sim = sim
        self.cluster = cluster
        self.topic = topic
        self.host = host
        self.config = config or PulsarProducerConfig()
        PulsarProducer._counter += 1
        self.producer_id = f"pulsar-producer-{PulsarProducer._counter}"
        self._batches: Dict[int, _OpenBatch] = {}
        self._pending: Dict[int, int] = {}
        self._pending_waiters: Dict[int, list] = {}
        self._cpu = FifoServer(sim, name=f"cpu:{self.producer_id}")
        self._round_robin = 0
        self._unacked = 0
        self.records_sent = 0
        self.bytes_sent = 0
        #: optional repro.obs.Tracer; None keeps the publish path untraced
        self.tracer = None
        #: extra attributes stamped on every root send span (e.g. the
        #: bench harness sets {"tenant": name} for per-tenant attribution)
        self.span_attrs: Dict[str, object] = {}

    @property
    def num_partitions(self) -> int:
        return self.cluster.topics[self.topic]

    def _partition_for(self, key: Optional[str]) -> int:
        if key is not None:
            return stable_hash64(key) % self.num_partitions
        self._round_robin = (self._round_robin + 1) % self.num_partitions
        return self._round_robin

    # ------------------------------------------------------------------
    def send(self, size: int, key: Optional[str] = None, count: int = 1) -> SimFuture:
        """Publish ``count`` records totalling ``size`` bytes.

        Oversized bulk groups split into batch-sized pieces so client
        batching limits hold exactly as for individual records; without
        batching, every record is its own broker entry (the §5.3
        latency-oriented configuration).
        """
        if not self.config.batching and count > 1:
            # One entry per record — no client aggregation at all.
            per_event = size // count
            done = self.sim.future()
            remaining = [count]

            def on_record(record_fut: SimFuture) -> None:
                remaining[0] -= 1
                if done.done:
                    return
                if record_fut.exception is not None:
                    done.set_exception(record_fut.exception)
                elif remaining[0] == 0:
                    done.set_result(record_fut._value)

            for _ in range(count):
                self.send(per_event, key, 1).add_callback(on_record)
            return done
        if (
            self.config.batching
            and count > 1
            and size > self.config.batch_size
        ):
            pieces = min(-(-size // self.config.batch_size), count)
            base, remainder = divmod(count, pieces)
            per_event = size // count
            done = self.sim.future()
            remaining = [pieces]

            def on_piece(piece_fut: SimFuture) -> None:
                remaining[0] -= 1
                if done.done:
                    return
                if piece_fut.exception is not None:
                    done.set_exception(piece_fut.exception)
                elif remaining[0] == 0:
                    done.set_result(piece_fut._value)

            for i in range(pieces):
                share = base + (1 if i < remainder else 0)
                if share:
                    self.send(per_event * share, key, share).add_callback(on_piece)
            return done
        fut = self.sim.future()
        self._unacked += 1
        fut.add_callback(self._on_acked)
        partition = self._partition_for(key)
        span = None
        if self.tracer is not None:
            span = self.tracer.span(
                "pulsar.send",
                actor=self.producer_id,
                bytes=size,
                events=count,
                **self.span_attrs,
            )
            if span is not None:
                fut.add_callback(lambda f, s=span: s.finish())
        record = _Record(size, count, fut, span=span)
        if not self.config.batching:
            self.sim.process(self._publish(partition, [record], size))
            return fut
        batch = self._batches.get(partition)
        if batch is None or batch.closed:
            batch = _OpenBatch()
            self._batches[partition] = batch
            self.sim.process(self._batch_timer(partition, batch))
        batch.records.append(record)
        batch.size += size
        if batch.size >= self.config.batch_size:
            self._close_batch(partition, batch)
        return fut

    def _on_acked(self, fut: SimFuture) -> None:
        self._unacked -= 1

    def _batch_timer(self, partition: int, batch: _OpenBatch):
        yield self.config.batch_delay
        if not batch.closed:
            self._close_batch(partition, batch)

    def _close_batch(self, partition: int, batch: _OpenBatch) -> None:
        if batch.closed:
            return
        batch.closed = True
        if self._batches.get(partition) is batch:
            del self._batches[partition]
        if batch.records:
            self.sim.process(self._publish(partition, batch.records, batch.size))

    def _publish(self, partition: int, records: List[_Record], size: int):
        config = self.config
        count = sum(r.count for r in records)
        yield self._cpu.submit(
            config.per_request_cpu
            + count * config.per_event_cpu
            + size / config.cpu_bandwidth
        )
        # maxPendingMessages backpressure (per partition), event-driven.
        while self._pending.get(partition, 0) >= config.max_pending:
            waiter = self.sim.future()
            self._pending_waiters.setdefault(partition, []).append(waiter)
            yield waiter
        self._pending[partition] = self._pending.get(partition, 0) + count
        partition_name = f"{self.topic}-{partition}"
        broker = self.cluster.broker_for(partition_name)
        first_span = next((r.span for r in records if r.span is not None), None)
        publish_span = None
        if first_span is not None:
            publish_span = first_span.child(
                "pulsar.publish", actor=broker.name, bytes=size, partition=partition
            )
        try:
            yield broker.publish(
                self.host,
                partition_name,
                Payload.synthetic(size),
                count,
                span=publish_span,
            )
        except Exception as exc:  # noqa: BLE001 - fail the records
            if publish_span is not None:
                publish_span.annotate("publish-error", error=type(exc).__name__)
            for record in records:
                if not record.future._done:
                    record.future.set_exception(exc)
            return
        finally:
            self._pending[partition] -= count
            waiters = self._pending_waiters.get(partition)
            if waiters and self._pending[partition] < config.max_pending:
                waiters.pop(0).set_result(None)
        self.records_sent += count
        self.bytes_sent += size
        if publish_span is not None:
            # Shared publish: every record in the batch experiences the
            # full broker round trip.
            for record in records:
                if record.span is not None:
                    record.span.absorb(publish_span)
        for record in records:
            if not record.future._done:
                record.future.set_result(partition)

    def flush(self) -> SimFuture:
        def run():
            for partition, batch in list(self._batches.items()):
                self._close_batch(partition, batch)
            while self._unacked > 0:
                yield 0.001

        return self.sim.process(run())
