"""Pulsar-like baseline: brokers over Bookkeeper, one managed ledger per
topic partition, client-side batching, and tiered-storage offloading that
is *not* integrated with the write path.

Behavioural properties taken from the paper's evaluation:

* the broker relays each producer batch as one Bookkeeper entry; with
  random routing keys across many partitions, client batches carry few
  events, so the entry rate explodes and the broker CPU saturates
  (Figs. 6a, 9, 10b, 11);
* with ``ackQuorum < ensemble`` the broker buffers entries that the
  slowest bookie has not confirmed; under high parallelism this buffer
  grows until the broker fails with an out-of-memory error — the
  instability of Fig. 10b, avoided by the paper's "favorable"
  configuration (ackQ=3, no routing keys);
* ledger rollover + offloadThreshold=0 + deleteLag=0 move closed ledgers
  to LTS, but producers are never throttled when the offloader lags, so
  the un-offloaded backlog can grow without bound (Figs. 7a, 12);
* dispatch to consumers is batched on a timer, putting a floor on
  end-to-end latency (Fig. 8a: no p95 under ~12 ms).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import BrokerCrashedError, PulsarError
from repro.common.payload import Payload
from repro.bookkeeper.client import BookKeeperCluster, LedgerHandle
from repro.lts.base import LongTermStorage
from repro.sim.core import SimFuture, Simulator
from repro.sim.network import Network
from repro.sim.resources import FifoServer

__all__ = ["PulsarBrokerConfig", "PulsarBroker", "ManagedLedger", "PulsarCluster"]

RPC_OVERHEAD = 64


@dataclass(frozen=True)
class PulsarBrokerConfig:
    #: Bookkeeper replication (Table 1: e=3, wQ=3, aQ=2; "favorable" aQ=3)
    ensemble_size: int = 3
    write_quorum: int = 3
    ack_quorum: int = 2
    #: broker CPU cost per relayed entry
    per_entry_cpu: float = 45e-6
    cpu_bandwidth: float = 2.5e9
    #: unconfirmed-replication buffer that crashes the broker when exceeded
    memory_limit: int = 512 * 1024 * 1024
    #: roll the current ledger after this many bytes (1-5 min in the paper;
    #: sized here so rollover happens during benchmark runs)
    ledger_rollover_bytes: int = 256 * 1024 * 1024
    #: consumer dispatch batching interval (e2e latency floor, Fig. 8a)
    dispatch_interval: float = 10e-3
    #: offloader threads per broker
    offload_threads: int = 2
    request_processing_time: float = 30e-6


@dataclass(slots=True)
class _LedgerRecord:
    handle: LedgerHandle
    first_offset: int
    size: int = 0
    closed: bool = False
    offloaded: bool = False
    lts_object: Optional[str] = None
    deleted_from_bk: bool = False


@dataclass(slots=True)
class _EntryIndex:
    """Partition offset -> (ledger record, entry size, record count)."""

    offset: int
    size: int
    records: int
    ledger: _LedgerRecord


class ManagedLedger:
    """One partition's sequence of Bookkeeper ledgers (+ offloaded tail)."""

    def __init__(self, broker: "PulsarBroker", name: str) -> None:
        self.broker = broker
        self.name = name
        self.ledgers: List[_LedgerRecord] = []
        self.entries: List[_EntryIndex] = []
        #: parallel list of entry offsets (bisect index for reads)
        self.entry_offsets: List[int] = []
        #: next byte offset within the partition
        self.length = 0
        self.records = 0
        self._open_new_ledger()

    def _open_new_ledger(self) -> _LedgerRecord:
        config = self.broker.config
        handle = self.broker.bk_client.create_ledger(
            ensemble_size=config.ensemble_size,
            write_quorum=config.write_quorum,
            ack_quorum=config.ack_quorum,
        )
        record = _LedgerRecord(handle=handle, first_offset=self.length)
        self.ledgers.append(record)
        return record

    @property
    def current(self) -> _LedgerRecord:
        return self.ledgers[-1]

    def maybe_rollover(self) -> None:
        if self.current.size >= self.broker.config.ledger_rollover_bytes:
            self.current.closed = True
            self.current.handle.close()
            self._open_new_ledger()
            self.broker.schedule_offload(self)

    def unoffloaded_backlog(self) -> int:
        """Closed-but-not-yet-offloaded bytes (grows without bound when the
        offloader lags — no backpressure, Fig. 12)."""
        return sum(l.size for l in self.ledgers if l.closed and not l.offloaded)


class PulsarBroker:
    """One broker (colocated with a bookie in Table 1's deployment)."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        network: Network,
        bk_cluster: BookKeeperCluster,
        lts: LongTermStorage,
        config: Optional[PulsarBrokerConfig] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.network = network
        self.bk_client = bk_cluster.client(name)
        self.lts = lts
        self.config = config or PulsarBrokerConfig()
        self.cpu = FifoServer(sim, name=f"cpu:{name}")
        self.ledgers: Dict[str, ManagedLedger] = {}
        self.alive = True
        #: fault-injection hook (repro.faults.FaultEngine); unwired by default
        self.faults = None
        #: bytes sent to bookies but not yet confirmed by *all* replicas
        self.replication_buffer = 0
        self._offload_queue: List[Tuple[ManagedLedger, _LedgerRecord]] = []
        self._offload_workers = 0
        #: dispatch waiters per partition: (offset, future)
        self._dispatch_waiters: Dict[str, List[Tuple[int, SimFuture]]] = {}
        self._dispatcher_running: Dict[str, bool] = {}
        self.entries_written = 0
        self.bytes_written = 0
        self.bytes_offloaded = 0

    # ------------------------------------------------------------------
    def host_partition(self, partition_name: str) -> ManagedLedger:
        ledger = ManagedLedger(self, partition_name)
        self.ledgers[partition_name] = ledger
        return ledger

    def crash(self, reason: str = "out of memory") -> None:
        self.alive = False
        for waiters in self._dispatch_waiters.values():
            for _, fut in waiters:
                if not fut.done:
                    fut.set_exception(BrokerCrashedError(f"{self.name}: {reason}"))
        self._dispatch_waiters.clear()

    def restart(self) -> None:
        self.alive = True

    # ------------------------------------------------------------------
    # Produce path
    # ------------------------------------------------------------------
    def publish(
        self,
        client_host: str,
        partition: str,
        payload: Payload,
        record_count: int,
        span=None,
    ) -> SimFuture:
        """One producer batch -> one Bookkeeper entry."""

        def run():
            if span is not None:
                t_request = self.sim.now
            yield self.network.transfer(
                client_host, self.name, payload.size + RPC_OVERHEAD
            )
            if span is not None:
                span.component("network", self.sim.now - t_request)
            if self.faults is not None:
                self.faults.node_op(self.name)
            if not self.alive:
                if span is not None:
                    span.annotate("broker-down")
                    span.finish()
                raise BrokerCrashedError(self.name)
            yield self.config.request_processing_time
            # Track replication memory from entry *receipt*: bytes held by
            # the broker — queued for its CPU, in flight to bookies, or
            # awaiting the full write quorum — all occupy the pending
            # buffer.  Counting only post-CPU entries hid the dominant
            # overload mode: a CPU-saturated broker accumulates its
            # backlog upstream of the bookie write path and never
            # reached the old (post-CPU) limit check.
            self.replication_buffer += payload.size
            if self.replication_buffer > self.config.memory_limit:
                self.crash("replication buffer exceeded memory limit")
                if span is not None:
                    span.annotate("replication-buffer-oom")
                    span.finish()
                raise BrokerCrashedError(self.name)
            yield self.cpu.submit(
                self.config.per_entry_cpu + payload.size / self.config.cpu_bandwidth
            )
            if not self.alive:
                # Crashed (OOM or injected fault) while this entry sat in
                # the CPU queue; it must not reach a dead broker's ledger.
                if span is not None:
                    span.annotate("broker-down")
                    span.finish()
                raise BrokerCrashedError(self.name)
            managed = self.ledgers[partition]
            ledger = managed.current
            offset = managed.length
            managed.length += payload.size
            managed.records += record_count
            ledger.size += payload.size
            managed.entries.append(
                _EntryIndex(offset, payload.size, record_count, ledger)
            )
            managed.entry_offsets.append(offset)
            append = managed.current.handle.append(payload, span=span)

            def full_replication_done(_: SimFuture) -> None:
                self.replication_buffer = max(
                    0, self.replication_buffer - payload.size
                )

            # ackQuorum acks complete `append`; the *full* write quorum is
            # what frees the buffer.  With aQ == wQ they coincide; with
            # aQ < wQ the slowest bookie's lag keeps memory occupied — we
            # model the lag as an extra journal-backlog delay on the
            # slowest bookie.
            lag = self._slowest_bookie_lag()
            if self.config.ack_quorum >= self.config.write_quorum:
                append.add_callback(full_replication_done)
            else:
                def after_ack(fut: SimFuture) -> None:
                    self.sim.schedule(lag, lambda: full_replication_done(fut))

                append.add_callback(after_ack)
            yield append
            self.entries_written += 1
            self.bytes_written += payload.size
            managed.maybe_rollover()
            self._wake_dispatch(partition)
            if span is not None:
                t_reply = self.sim.now
            yield self.network.transfer(self.name, client_host, RPC_OVERHEAD)
            if span is not None:
                span.component("network", self.sim.now - t_reply)
                span.finish()
            return offset

        return self.sim.process(run())

    def _slowest_bookie_lag(self) -> float:
        """Extra time until the slowest replica confirms, estimated from
        the maximum journal backlog across the ensemble's bookies."""
        cluster = self.bk_client.cluster
        backlog = 0.0
        for bookie in cluster.bookies.values():
            backlog = max(backlog, bookie.journal_disk.backlog_seconds())
        return backlog

    # ------------------------------------------------------------------
    # Offloader (best-effort, no backpressure)
    # ------------------------------------------------------------------
    def schedule_offload(self, managed: ManagedLedger) -> None:
        for record in managed.ledgers:
            if record.closed and not record.offloaded and (
                (managed, record) not in self._offload_queue
            ):
                self._offload_queue.append((managed, record))
        self._kick_offloaders()

    def _kick_offloaders(self) -> None:
        while (
            self._offload_workers < self.config.offload_threads
            and self._offload_queue
        ):
            managed, record = self._offload_queue.pop(0)
            self._offload_workers += 1
            self.sim.process(self._offload(managed, record))

    def _offload(self, managed: ManagedLedger, record: _LedgerRecord):
        try:
            name = f"pulsar/{managed.name}/ledger-{record.handle.ledger_id}"
            yield self.lts.write_chunk(name, Payload.synthetic(record.size))
            record.offloaded = True
            record.lts_object = name
            self.bytes_offloaded += record.size
            # offloadDeleteLag=0: remove from Bookkeeper immediately.
            yield self.bk_client.delete_ledger(record.handle.ledger_id)
            record.deleted_from_bk = True
        finally:
            self._offload_workers -= 1
            self._kick_offloaders()

    # ------------------------------------------------------------------
    # Dispatch path (consumers)
    # ------------------------------------------------------------------
    def _wake_dispatch(self, partition: str) -> None:
        if self._dispatcher_running.get(partition):
            return
        if self._dispatch_waiters.get(partition):
            self._dispatcher_running[partition] = True
            self.sim.process(self._dispatch_timer(partition))

    def _dispatch_timer(self, partition: str):
        # Batched dispatch: deliveries go out on the dispatch interval.
        yield self.config.dispatch_interval
        self._dispatcher_running[partition] = False
        managed = self.ledgers.get(partition)
        if managed is None:
            return
        waiters = self._dispatch_waiters.get(partition, [])
        remaining = []
        for offset, fut in waiters:
            if offset < managed.length:
                if not fut.done:
                    fut.set_result(None)
            else:
                remaining.append((offset, fut))
        self._dispatch_waiters[partition] = remaining
        if remaining:
            self._wake_dispatch(partition)

    def wait_for_data(self, partition: str, offset: int) -> SimFuture:
        fut = self.sim.future()
        managed = self.ledgers.get(partition)
        if managed is not None and offset < managed.length:
            # Still pays the dispatch batching delay.
            self.sim.schedule(
                self.config.dispatch_interval / 2.0, lambda: fut.set_result(None)
            )
            return fut
        self._dispatch_waiters.setdefault(partition, []).append((offset, fut))
        self._wake_dispatch(partition)
        return fut

    def read(self, client_host: str, partition: str, offset: int, max_bytes: int) -> SimFuture:
        """Consumer read: tail from BK/cache, historical from LTS objects.

        Historical reads of offloaded ledgers go through the broker's
        offload reader, which fetches one ledger object at a time per
        broker (no cross-ledger readahead) — the mechanism behind Fig. 12's
        limited catch-up throughput.
        """

        def run():
            yield self.network.transfer(client_host, self.name, RPC_OVERHEAD)
            if not self.alive:
                raise BrokerCrashedError(self.name)
            yield self.config.request_processing_time
            managed = self.ledgers[partition]
            if offset >= managed.length:
                yield self.wait_for_data(partition, offset)
            # Locate entries starting at offset.
            taken = 0
            records = 0
            fetched_ledgers = set()
            entries = managed.entries
            # Entries are offset-sorted: bisect to the start instead of
            # scanning the partition's whole history per read.
            start = bisect_right(managed.entry_offsets, offset) - 1
            if start < 0:
                start = 0
            for i in range(start, len(entries)):
                entry = entries[i]
                if entry.offset + entry.size <= offset:
                    continue
                if taken >= max_bytes:
                    break
                ledger = entry.ledger
                if ledger.offloaded and ledger.deleted_from_bk:
                    if ledger.lts_object not in fetched_ledgers:
                        fetched_ledgers.add(ledger.lts_object)
                        yield self._offload_read(ledger)
                yield self.cpu.submit(self.config.per_entry_cpu / 4)
                taken += entry.size
                records += entry.records
            yield self.network.transfer(self.name, client_host, RPC_OVERHEAD + taken)
            return records, taken, offset + taken

        return self.sim.process(run())

    _offload_read_lock_busy = False

    def _offload_read(self, ledger: _LedgerRecord) -> SimFuture:
        """Serialized per broker: one offloaded-ledger fetch at a time."""

        def run():
            while self._offload_read_busy:
                yield 0.001
            self._offload_read_busy = True
            try:
                yield self.lts.read_chunk(ledger.lts_object)
            finally:
                self._offload_read_busy = False

        return self.sim.process(run())

    _offload_read_busy = False


class PulsarCluster:
    """Topic metadata + broker registry."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        bk_cluster: BookKeeperCluster,
        lts: LongTermStorage,
        config: Optional[PulsarBrokerConfig] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.bk_cluster = bk_cluster
        self.lts = lts
        self.config = config or PulsarBrokerConfig()
        self.brokers: Dict[str, PulsarBroker] = {}
        self.topics: Dict[str, int] = {}
        #: partition name -> broker name
        self.assignments: Dict[str, str] = {}

    def add_broker(self, broker: PulsarBroker) -> None:
        self.brokers[broker.name] = broker

    def create_topic(self, topic: str, partitions: int) -> None:
        names = sorted(self.brokers)
        self.topics[topic] = partitions
        for partition in range(partitions):
            name = f"{topic}-{partition}"
            owner = names[partition % len(names)]
            self.assignments[name] = owner
            self.brokers[owner].host_partition(name)

    def broker_for(self, partition_name: str) -> PulsarBroker:
        return self.brokers[self.assignments[partition_name]]

    def unoffloaded_backlog(self) -> int:
        return sum(
            ledger.unoffloaded_backlog()
            for broker in self.brokers.values()
            for ledger in broker.ledgers.values()
        )

    @property
    def any_broker_crashed(self) -> bool:
        return any(not b.alive for b in self.brokers.values())
