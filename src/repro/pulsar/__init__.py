"""Pulsar-like baseline (§5.1, Table 1): brokers over Bookkeeper with
client-side batching and non-integrated tiered storage."""

from repro.pulsar.broker import (
    ManagedLedger,
    PulsarBroker,
    PulsarBrokerConfig,
    PulsarCluster,
)
from repro.pulsar.consumer import PulsarConsumedBatch, PulsarConsumer
from repro.pulsar.producer import PulsarProducer, PulsarProducerConfig

__all__ = [
    "PulsarCluster",
    "PulsarBroker",
    "PulsarBrokerConfig",
    "ManagedLedger",
    "PulsarProducer",
    "PulsarProducerConfig",
    "PulsarConsumer",
    "PulsarConsumedBatch",
]
