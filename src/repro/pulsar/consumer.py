"""Pulsar consumer: per-partition receive loop through the broker's
dispatcher (which batches deliveries on a timer — the e2e latency floor
of Fig. 8a)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.core import SimFuture, Simulator
from repro.pulsar.broker import PulsarCluster

__all__ = ["PulsarConsumer", "PulsarConsumedBatch"]


@dataclass
class PulsarConsumedBatch:
    partition: int
    record_count: int
    byte_count: int
    read_time: float


class PulsarConsumer:
    """A consumer subscribed to a subset of a topic's partitions."""

    def __init__(
        self,
        sim: Simulator,
        cluster: PulsarCluster,
        topic: str,
        host: str,
        partitions: Optional[List[int]] = None,
        receive_max_bytes: int = 1024 * 1024,
    ) -> None:
        self.sim = sim
        self.cluster = cluster
        self.topic = topic
        self.host = host
        self.partitions = (
            partitions
            if partitions is not None
            else list(range(cluster.topics[topic]))
        )
        self.receive_max_bytes = receive_max_bytes
        self.offsets: Dict[int, int] = {p: 0 for p in self.partitions}
        self._cursor = 0
        self.records_read = 0
        self.bytes_read = 0

    def receive(self) -> SimFuture:
        """Read the next available data from the next partition.

        Resolves with a :class:`PulsarConsumedBatch`.
        """

        def run():
            self._cursor = (self._cursor + 1) % len(self.partitions)
            partition = self.partitions[self._cursor]
            name = f"{self.topic}-{partition}"
            broker = self.cluster.broker_for(name)
            offset = self.offsets[partition]
            records, nbytes, next_offset = yield broker.read(
                self.host, name, offset, self.receive_max_bytes
            )
            self.offsets[partition] = next_offset
            self.records_read += records
            self.bytes_read += nbytes
            return PulsarConsumedBatch(partition, records, nbytes, self.sim.now)

        return self.sim.process(run())
