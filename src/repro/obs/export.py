"""Chrome trace-event JSON export (Perfetto / chrome://tracing loadable).

Each finished span becomes a complete ``"ph": "X"`` duration event; the
span's actor (writer-0, segmentstore-1, bookie-2, ...) maps to a stable
thread id so Perfetto renders one lane per simulated component.  All
times come from the sim clock (microseconds, as the format requires) and
the JSON is serialized with sorted keys and fixed separators, so two
same-seed runs export byte-identical files.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.obs.tracer import Tracer

__all__ = ["to_chrome_trace", "export_chrome_trace"]

PID = 1


def to_chrome_trace(tracer: Tracer, stamp_faults: bool = True) -> str:
    """Serialize the tracer's finished spans as Chrome trace-event JSON."""
    if stamp_faults:
        tracer.stamp_fault_windows()
    finished = [span for span in tracer.spans if span.end is not None]

    # Stable actor -> tid assignment in first-seen (deterministic) order.
    tids: Dict[str, int] = {}
    for span in finished:
        if span.actor not in tids:
            tids[span.actor] = len(tids) + 1

    events: List[Dict[str, Any]] = []
    for actor, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": PID,
                "tid": tid,
                "args": {"name": actor},
            }
        )
    for span in finished:
        args: Dict[str, Any] = {"span_id": span.span_id, "parent_id": span.parent_id}
        for key, value in span.attrs.items():
            if not key.startswith("_"):
                args[key] = value
        if span.components:
            args["components"] = dict(span.components)
        if span.annotations:
            args["annotations"] = list(span.annotations)
        events.append(
            {
                "name": span.name,
                "cat": "sim",
                "ph": "X",
                "pid": PID,
                "tid": tids[span.actor],
                "ts": span.start * 1e6,
                "dur": (span.end - span.start) * 1e6,
                "args": args,
            }
        )
    document = {"displayTimeUnit": "ms", "traceEvents": events}
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def export_chrome_trace(tracer: Tracer, path: str, stamp_faults: bool = True) -> str:
    """Write the Chrome trace-event JSON to ``path``; returns the JSON."""
    text = to_chrome_trace(tracer, stamp_faults=stamp_faults)
    with open(path, "w") as fh:
        fh.write(text)
    return text
