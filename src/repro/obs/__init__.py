"""Observability: simulated-time distributed tracing (Dapper-style).

``Tracer``/``Span`` record a span tree over the sim clock; the exporter
emits Chrome trace-event JSON (loadable in Perfetto / chrome://tracing)
and the critical-path analyzer decomposes each event's ack latency into
additive components (network / fsync / quorum / queueing).

Tracing is zero-cost when disabled: components hold ``tracer = None`` by
default and every hook is guarded by an ``is not None`` check, so the
untraced hot paths execute exactly the same instruction stream as before
this subsystem existed.
"""

from repro.obs.tracer import Span, Tracer
from repro.obs.export import to_chrome_trace, export_chrome_trace
from repro.obs.critical_path import (
    COMPONENTS,
    WRITE_ROOT_NAMES,
    attr_breakdown,
    event_records,
    median_record,
    summarize,
)

__all__ = [
    "Span",
    "Tracer",
    "to_chrome_trace",
    "export_chrome_trace",
    "COMPONENTS",
    "WRITE_ROOT_NAMES",
    "attr_breakdown",
    "event_records",
    "median_record",
    "summarize",
]
