"""Span tracing on simulated time.

The model is deliberately small and deterministic:

* Span IDs are an incrementing counter — two same-seed runs produce
  byte-identical traces, which the golden-trace tests rely on.
* Context propagation is *explicit*: sim processes interleave on one
  Python thread, so ambient (thread-local) context would attribute spans
  to whichever process happened to run last.  Instead the parent span is
  threaded through the call path as an optional argument, mirroring how
  the fault engine is threaded through the same choke points.
* Shared spans (a client batch, a DurableLog frame, a replicated ledger
  entry, a journal group-commit) are **absorbed** into every waiter:
  each waiting event experiences the full shared duration, so per-event
  component sums stay additive without dividing shared work.
* The critical-path buckets are ``network``, ``fsync`` and ``quorum``;
  whatever part of an event's latency no component claims is queueing
  (batching windows, FIFO servers, admission gates), computed as the
  residual so the four buckets always sum exactly to the measured ack
  latency.
"""

from __future__ import annotations

from fnmatch import fnmatch
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Span", "Tracer"]


class Span:
    """One timed operation; ``start``/``end`` are sim-clock seconds."""

    __slots__ = (
        "tracer",
        "span_id",
        "parent",
        "name",
        "actor",
        "start",
        "end",
        "attrs",
        "components",
        "annotations",
    )

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent: Optional["Span"],
        name: str,
        actor: str,
        start: float,
        attrs: Dict[str, Any],
    ) -> None:
        self.tracer = tracer
        self.span_id = span_id
        self.parent = parent
        self.name = name
        self.actor = actor
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs
        self.components: Dict[str, float] = {}
        self.annotations: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    @property
    def parent_id(self) -> int:
        return self.parent.span_id if self.parent is not None else 0

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def child(self, name: str, actor: Optional[str] = None, start: Optional[float] = None, **attrs: Any) -> "Span":
        return self.tracer.span(
            name, parent=self, actor=self.actor if actor is None else actor, start=start, **attrs
        )

    def component(self, kind: str, dt: float) -> None:
        """Accrue ``dt`` seconds of ``kind`` (network/fsync/quorum) time."""
        self.components[kind] = self.components.get(kind, 0.0) + dt

    def absorb(self, other: "Span") -> None:
        """Fold a shared child span's components into this span."""
        for kind, dt in other.components.items():
            self.components[kind] = self.components.get(kind, 0.0) + dt

    def annotate(self, label: str, **data: Any) -> None:
        entry = {"label": label}
        entry.update(data)
        self.annotations.append(entry)

    def finish(self, end: Optional[float] = None) -> None:
        self.end = self.tracer.sim.now if end is None else end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.span_id}, {self.name!r}, actor={self.actor!r}, [{self.start}, {self.end}])"


class Tracer:
    """Factory and registry for spans over one simulation.

    A disabled tracer (``enabled=False``) returns ``None`` from
    :meth:`span`, so every downstream ``if span is not None`` guard
    short-circuits and no span objects are ever allocated —
    ``spans_created`` stays zero, which the overhead guard test asserts.
    """

    def __init__(self, sim, enabled: bool = True) -> None:
        self.sim = sim
        self.enabled = enabled
        self.spans: List[Span] = []
        self.spans_created = 0
        #: (start, end, action, target) windows recorded by the fault engine
        self.fault_windows: List[Tuple[float, float, str, str]] = []
        #: (start, end) analytic spans recorded by the fluid controller —
        #: no per-message spans exist inside these; analyses that count
        #: spans per second must exclude (or down-weight) them
        self.fluid_windows: List[Tuple[float, float]] = []
        self._next_id = 1
        self._stamped_windows = 0

    # ------------------------------------------------------------------
    def span(
        self,
        name: str,
        parent: Optional[Span] = None,
        actor: str = "sim",
        start: Optional[float] = None,
        **attrs: Any,
    ) -> Optional[Span]:
        if not self.enabled:
            return None
        span_id = self._next_id
        self._next_id += 1
        self.spans_created += 1
        span = Span(
            self,
            span_id,
            parent,
            name,
            actor,
            self.sim.now if start is None else start,
            attrs,
        )
        self.spans.append(span)
        return span

    # ------------------------------------------------------------------
    # Fault-window stamping (PR 2 integration)
    # ------------------------------------------------------------------
    def record_fault_window(self, start: float, end: float, action: str, target: str) -> None:
        """Called by the fault engine when a windowed fault activates."""
        self.fault_windows.append((start, end, action, target))

    def record_fluid_window(self, start: float, end: float) -> None:
        """Called after a run for each analytic (fluid) span it used."""
        self.fluid_windows.append((start, end))

    def stamp_fault_windows(self) -> int:
        """Annotate every finished span overlapping an active fault window.

        Idempotent: windows already stamped in a previous call are skipped,
        so exporting twice does not duplicate annotations.  Returns the
        number of annotations added.
        """
        fresh = self.fault_windows[self._stamped_windows:]
        self._stamped_windows = len(self.fault_windows)
        if not fresh:
            return 0
        added = 0
        for span in self.spans:
            if span.end is None:
                continue
            for window_start, window_end, action, target in fresh:
                if span.start < window_end and window_start < span.end and _target_matches(span.actor, target):
                    span.annotate(
                        f"fault:{action}",
                        target=target,
                        window_start=window_start,
                        window_end=window_end,
                    )
                    added += 1
        return added


def _target_matches(actor: str, target: str) -> bool:
    """Match a span's actor against a fault-rule target pattern.

    Node rules use fnmatch patterns (``bookie-*``); network rules use
    link patterns (``src->dst``) — a span on either endpoint overlapping
    the window is considered affected.
    """
    if actor is None:
        return False
    if "<->" in target:
        src, _, dst = target.partition("<->")
        return fnmatch(actor, src.strip()) or fnmatch(actor, dst.strip())
    if "->" in target:
        src, _, dst = target.partition("->")
        return fnmatch(actor, src.strip()) or fnmatch(actor, dst.strip())
    return fnmatch(actor, target)
