"""Critical-path analysis over the span tree.

Every root write span carries accrued ``network`` / ``fsync`` /
``quorum`` component time (shared spans are absorbed into each waiter,
so components are per-event additive); queueing is the residual, making

    network + fsync + quorum + queueing == measured ack latency

hold *exactly* for every event.  The per-figure headline — "where does
the p50 go?" — is the decomposition of the median-by-total event, whose
component sum therefore reconstructs the measured p50 by construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.tracer import Tracer

__all__ = [
    "COMPONENTS",
    "WRITE_ROOT_NAMES",
    "attr_breakdown",
    "event_records",
    "median_record",
    "summarize",
]

COMPONENTS = ("network", "fsync", "quorum", "queueing")

#: root span names of the three systems' client write paths
WRITE_ROOT_NAMES = ("pravega.write", "kafka.send", "pulsar.send")


def event_records(
    tracer: Tracer, window: Optional[Tuple[float, float]] = None
) -> List[Dict[str, float]]:
    """One decomposition record per finished root write span.

    ``window=(start, end)`` restricts to events *sent* inside the
    measurement window, matching what the benchmark histogram records.
    """
    records: List[Dict[str, float]] = []
    for span in tracer.spans:
        if span.parent is not None or span.name not in WRITE_ROOT_NAMES:
            continue
        if span.end is None:
            continue
        if window is not None and not (window[0] <= span.start < window[1]):
            continue
        total = span.end - span.start
        network = span.components.get("network", 0.0)
        fsync = span.components.get("fsync", 0.0)
        quorum = span.components.get("quorum", 0.0)
        records.append(
            {
                "name": span.name,
                "span_id": float(span.span_id),
                "total": total,
                "network": network,
                "fsync": fsync,
                "quorum": quorum,
                "queueing": total - network - fsync - quorum,
            }
        )
    return records


def attr_breakdown(
    tracer: Tracer, key: str, window: Optional[Tuple[float, float]] = None
) -> Dict[str, Dict[str, float]]:
    """Aggregate root write spans grouped by an attribute value.

    ``key`` names a span attribute (the bench harness stamps ``tenant``
    on every root span of a multi-tenant run); spans without it land in
    ``"unattributed"``.  Per group: span count, payload event/byte sums,
    and the mean ack latency — "who is spending the cluster's time".
    """
    groups: Dict[str, Dict[str, float]] = {}
    for span in tracer.spans:
        if span.parent is not None or span.name not in WRITE_ROOT_NAMES:
            continue
        if span.end is None:
            continue
        if window is not None and not (window[0] <= span.start < window[1]):
            continue
        value = str(span.attrs.get(key, "unattributed"))
        group = groups.setdefault(
            value,
            {"spans": 0.0, "events": 0.0, "bytes": 0.0, "total_time": 0.0},
        )
        group["spans"] += 1.0
        group["events"] += float(span.attrs.get("events", 1))
        group["bytes"] += float(span.attrs.get("bytes", 0))
        group["total_time"] += span.end - span.start
    for group in groups.values():
        group["mean_latency"] = group["total_time"] / group["spans"]
    return groups


def median_record(records: List[Dict[str, float]]) -> Optional[Dict[str, float]]:
    """The decomposition of the median-by-total-latency event.

    Uses the same linear-interpolation rank as
    :func:`repro.common.metrics.percentile`, so the reconstructed total
    equals the latency histogram's p50 when both saw the same samples.
    Interpolating each bucket with the same weight keeps the
    decomposition additive: the interpolated components still sum
    exactly to the interpolated total.
    """
    if not records:
        return None
    ordered = sorted(records, key=lambda record: record["total"])
    rank = 0.5 * (len(ordered) - 1)
    low = int(rank)
    if low == rank:
        return ordered[low]
    weight = rank - low
    lo, hi = ordered[low], ordered[low + 1]
    blended = {"name": lo["name"], "span_id": lo["span_id"]}
    for key in ("total",) + COMPONENTS:
        blended[key] = lo[key] * (1 - weight) + hi[key] * weight
    return blended


def summarize(
    tracer: Tracer, window: Optional[Tuple[float, float]] = None
) -> Dict[str, float]:
    """Aggregate decomposition: event count, p50 event breakdown, means."""
    records = event_records(tracer, window=window)
    summary: Dict[str, float] = {"events": float(len(records))}
    if not records:
        return summary
    median = median_record(records)
    summary["p50.total"] = median["total"]
    for kind in COMPONENTS:
        summary[f"p50.{kind}"] = median[kind]
        summary[f"mean.{kind}"] = sum(r[kind] for r in records) / len(records)
    summary["mean.total"] = sum(r["total"] for r in records) / len(records)
    return summary
