"""The znode data model of the coordination service.

A znode has data, a monotonically increasing version (for compare-and-set),
an optional owner session (ephemeral nodes), and children.  Paths are
``/``-separated absolute strings, as in Apache Zookeeper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["ZNode", "split_path", "parent_path", "validate_path"]


def validate_path(path: str) -> None:
    """Reject paths that are not absolute, normalized znode paths."""
    if not path.startswith("/"):
        raise ValueError(f"znode path must be absolute: {path!r}")
    if path != "/" and path.endswith("/"):
        raise ValueError(f"znode path must not end with '/': {path!r}")
    if "//" in path:
        raise ValueError(f"znode path must not contain '//': {path!r}")


def split_path(path: str) -> list[str]:
    """Split an absolute znode path into its components."""
    validate_path(path)
    if path == "/":
        return []
    return path[1:].split("/")


def parent_path(path: str) -> str:
    """The parent znode's path; the root has no parent."""
    parts = split_path(path)
    if not parts:
        raise ValueError("root has no parent")
    if len(parts) == 1:
        return "/"
    return "/" + "/".join(parts[:-1])


@dataclass
class ZNode:
    """A node in the coordination-service tree."""

    name: str
    data: bytes = b""
    version: int = 0
    #: session id owning this node, if ephemeral
    ephemeral_owner: Optional[int] = None
    #: counter used to name sequential children
    child_sequence: int = 0
    children: Dict[str, "ZNode"] = field(default_factory=dict)

    @property
    def is_ephemeral(self) -> bool:
        return self.ephemeral_owner is not None
