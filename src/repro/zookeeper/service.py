"""An in-process coordination service with Zookeeper semantics.

Pravega uses Apache Zookeeper for "leader election and general cluster
management purposes" (§2.2) and to keep "the assignment of segment
containers to segment stores in a consistent store" (§4.4).  The
properties those uses rely on — a linearizable znode tree with versioned
compare-and-set, ephemeral nodes tied to client sessions, and one-shot
watches — are implemented here; the ZAB replication protocol itself is
below the level of abstraction the paper's evaluation exercises, so the
service is a single linearization point whose operations cost one network
round trip from the caller's host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.common.errors import (
    BadVersionError,
    NoNodeError,
    NodeExistsError,
    SessionExpiredError,
)
from repro.sim.core import SimFuture, Simulator
from repro.sim.network import Network
from repro.zookeeper.znode import ZNode, parent_path, split_path

__all__ = ["ZookeeperService", "ZkClient", "NodeStat", "WatchEvent"]


@dataclass(frozen=True)
class NodeStat:
    """Metadata returned with reads and writes."""

    version: int
    ephemeral_owner: Optional[int]
    num_children: int


@dataclass(frozen=True)
class WatchEvent:
    """Delivered (once) to a watch callback."""

    kind: str  # "data" | "children" | "deleted" | "created"
    path: str


class ZookeeperService:
    """The server side: the znode tree, sessions and watch dispatch."""

    def __init__(self, sim: Simulator, network: Network, host: str = "zookeeper") -> None:
        self.sim = sim
        self.network = network
        self.host = host
        self._root = ZNode(name="")
        self._next_session_id = 1
        self._sessions: Dict[int, List[str]] = {}
        self._session_hosts: Dict[int, str] = {}
        self._data_watches: Dict[str, List[Callable[[WatchEvent], None]]] = {}
        self._child_watches: Dict[str, List[Callable[[WatchEvent], None]]] = {}

    def connect(self, client_host: str) -> "ZkClient":
        """Open a session from ``client_host``."""
        session_id = self._next_session_id
        self._next_session_id += 1
        self._sessions[session_id] = []
        self._session_hosts[session_id] = client_host
        return ZkClient(self, client_host, session_id)

    # ------------------------------------------------------------------
    # Tree operations (synchronous core; latency added by ZkClient)
    # ------------------------------------------------------------------
    def _lookup(self, path: str) -> ZNode:
        node = self._root
        for part in split_path(path):
            child = node.children.get(part)
            if child is None:
                raise NoNodeError(path)
            node = child
        return node

    def _stat(self, node: ZNode) -> NodeStat:
        return NodeStat(node.version, node.ephemeral_owner, len(node.children))

    def do_create(
        self,
        path: str,
        data: bytes,
        session_id: Optional[int],
        ephemeral: bool,
        sequential: bool,
    ) -> str:
        parent = self._lookup(parent_path(path))
        parts = split_path(path)
        name = parts[-1]
        if sequential:
            name = f"{name}{parent.child_sequence:010d}"
            parent.child_sequence += 1
        if name in parent.children:
            raise NodeExistsError(path)
        owner = session_id if ephemeral else None
        if ephemeral:
            if session_id is None or session_id not in self._sessions:
                raise SessionExpiredError(f"session {session_id}")
        parent.children[name] = ZNode(name=name, data=data, ephemeral_owner=owner)
        created = (parent_path(path).rstrip("/") or "") + "/" + name
        if ephemeral and session_id is not None:
            self._sessions[session_id].append(created)
        self._fire_child_watches(parent_path(path))
        self._fire_data_watches(created, "created")
        return created

    def do_get(self, path: str) -> tuple[bytes, NodeStat]:
        node = self._lookup(path)
        return node.data, self._stat(node)

    def do_set(self, path: str, data: bytes, expected_version: int = -1) -> NodeStat:
        node = self._lookup(path)
        if expected_version != -1 and node.version != expected_version:
            raise BadVersionError(
                f"{path}: expected v{expected_version}, found v{node.version}"
            )
        node.data = data
        node.version += 1
        self._fire_data_watches(path, "data")
        return self._stat(node)

    def do_delete(self, path: str, expected_version: int = -1) -> None:
        parent = self._lookup(parent_path(path))
        name = split_path(path)[-1]
        node = parent.children.get(name)
        if node is None:
            raise NoNodeError(path)
        if expected_version != -1 and node.version != expected_version:
            raise BadVersionError(
                f"{path}: expected v{expected_version}, found v{node.version}"
            )
        if node.children:
            raise NodeExistsError(f"{path} has children")
        del parent.children[name]
        if node.ephemeral_owner is not None:
            owned = self._sessions.get(node.ephemeral_owner)
            if owned and path in owned:
                owned.remove(path)
        self._fire_data_watches(path, "deleted")
        self._fire_child_watches(parent_path(path))

    def do_exists(self, path: str) -> Optional[NodeStat]:
        try:
            return self._stat(self._lookup(path))
        except NoNodeError:
            return None

    def do_get_children(self, path: str) -> List[str]:
        return sorted(self._lookup(path).children.keys())

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def expire_session(self, session_id: int) -> None:
        """Remove the session and delete its ephemeral nodes (crash model)."""
        owned = self._sessions.pop(session_id, [])
        self._session_hosts.pop(session_id, None)
        for path in list(owned):
            try:
                self.do_delete(path)
            except (NoNodeError, NodeExistsError):
                pass

    def expire_sessions_for_host(self, host_pattern: str) -> int:
        """Expire every session opened from a host matching the fnmatch
        pattern (fault injection: the host lost its zookeeper lease).
        Returns the number of sessions expired."""
        from fnmatch import fnmatch

        victims = [
            sid
            for sid, host in self._session_hosts.items()
            if fnmatch(host, host_pattern)
        ]
        for sid in victims:
            self.expire_session(sid)
        return len(victims)

    def session_alive(self, session_id: int) -> bool:
        return session_id in self._sessions

    # ------------------------------------------------------------------
    # Watches (one-shot, like Zookeeper)
    # ------------------------------------------------------------------
    def add_data_watch(self, path: str, callback: Callable[[WatchEvent], None]) -> None:
        self._data_watches.setdefault(path, []).append(callback)

    def add_child_watch(self, path: str, callback: Callable[[WatchEvent], None]) -> None:
        self._child_watches.setdefault(path, []).append(callback)

    def _fire_data_watches(self, path: str, kind: str) -> None:
        watches = self._data_watches.pop(path, [])
        event = WatchEvent(kind, path)
        for callback in watches:
            self.sim.call_soon(lambda cb=callback: cb(event))

    def _fire_child_watches(self, path: str) -> None:
        watches = self._child_watches.pop(path, [])
        event = WatchEvent("children", path)
        for callback in watches:
            self.sim.call_soon(lambda cb=callback: cb(event))


class ZkClient:
    """A client session; every operation costs one network round trip."""

    def __init__(self, service: ZookeeperService, client_host: str, session_id: int) -> None:
        self.service = service
        self.client_host = client_host
        self.session_id = session_id

    @property
    def alive(self) -> bool:
        return self.service.session_alive(self.session_id)

    def close(self) -> None:
        """Graceful close: ephemeral nodes are removed immediately."""
        self.service.expire_session(self.session_id)

    def _roundtrip(self, operation: Callable[[], Any]) -> SimFuture:
        """Request travels to the service host, executes, reply travels back."""
        sim = self.service.sim
        network = self.service.network
        result = sim.future()
        request = network.transfer(self.client_host, self.service.host, 128)

        def on_request_arrival(_: SimFuture) -> None:
            if not self.service.session_alive(self.session_id):
                outcome: tuple[Any, Optional[BaseException]] = (
                    None,
                    SessionExpiredError(f"session {self.session_id}"),
                )
            else:
                try:
                    outcome = (operation(), None)
                except Exception as exc:  # noqa: BLE001 - forwarded to caller
                    outcome = (None, exc)
            reply = network.transfer(self.service.host, self.client_host, 128)

            def on_reply(_: SimFuture) -> None:
                value, error = outcome
                if error is not None:
                    result.set_exception(error)
                else:
                    result.set_result(value)

            reply.add_callback(on_reply)

        request.add_callback(on_request_arrival)
        return result

    # ------------------------------------------------------------------
    def create(
        self,
        path: str,
        data: bytes = b"",
        ephemeral: bool = False,
        sequential: bool = False,
    ) -> SimFuture:
        """Create a znode; resolves with the actual created path."""
        return self._roundtrip(
            lambda: self.service.do_create(
                path, data, self.session_id, ephemeral, sequential
            )
        )

    def get(self, path: str) -> SimFuture:
        """Resolves with (data, NodeStat)."""
        return self._roundtrip(lambda: self.service.do_get(path))

    def set(self, path: str, data: bytes, expected_version: int = -1) -> SimFuture:
        """Compare-and-set when ``expected_version >= 0``."""
        return self._roundtrip(lambda: self.service.do_set(path, data, expected_version))

    def delete(self, path: str, expected_version: int = -1) -> SimFuture:
        return self._roundtrip(lambda: self.service.do_delete(path, expected_version))

    def exists(self, path: str) -> SimFuture:
        """Resolves with a NodeStat or None."""
        return self._roundtrip(lambda: self.service.do_exists(path))

    def get_children(self, path: str) -> SimFuture:
        return self._roundtrip(lambda: self.service.do_get_children(path))

    def ensure_path(self, path: str) -> SimFuture:
        """Create ``path`` and all missing ancestors (persistent nodes)."""

        def build() -> None:
            parts = split_path(path)
            current = ""
            for part in parts:
                current += "/" + part
                try:
                    self.service.do_create(current, b"", None, False, False)
                except NodeExistsError:
                    continue

        return self._roundtrip(build)

    def watch_data(self, path: str, callback: Callable[[WatchEvent], None]) -> None:
        """One-shot watch on data changes/deletion of ``path``."""
        self.service.add_data_watch(path, callback)

    def watch_children(self, path: str, callback: Callable[[WatchEvent], None]) -> None:
        """One-shot watch on membership changes under ``path``."""
        self.service.add_child_watch(path, callback)
