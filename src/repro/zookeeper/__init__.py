"""Zookeeper-like coordination service (substrate for Pravega, §2.2/§4.4)."""

from repro.zookeeper.election import LeaderElection
from repro.zookeeper.service import NodeStat, WatchEvent, ZkClient, ZookeeperService
from repro.zookeeper.znode import ZNode, parent_path, split_path, validate_path

__all__ = [
    "ZookeeperService",
    "ZkClient",
    "NodeStat",
    "WatchEvent",
    "LeaderElection",
    "ZNode",
    "parent_path",
    "split_path",
    "validate_path",
]
