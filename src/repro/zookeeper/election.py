"""Leader election recipe over ephemeral sequential znodes.

This is the standard Zookeeper election recipe Pravega uses for its
controller instances (§2.2): each candidate creates an ephemeral
sequential node under an election path; the candidate with the smallest
sequence number is the leader; every other candidate watches the node
immediately preceding its own, so leadership transfers without a herd
effect when the leader's session expires.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.common.errors import NoNodeError
from repro.sim.core import SimFuture
from repro.zookeeper.service import WatchEvent, ZkClient

__all__ = ["LeaderElection"]


class LeaderElection:
    """One candidate's participation in an election."""

    def __init__(self, zk: ZkClient, election_path: str, candidate_id: str) -> None:
        self.zk = zk
        self.election_path = election_path
        self.candidate_id = candidate_id
        self.my_node: Optional[str] = None
        self._leader_future: Optional[SimFuture] = None
        self._on_leadership: list[Callable[[], None]] = []

    @property
    def is_leader(self) -> bool:
        return self._leader_future is not None and self._leader_future.done

    def on_leadership(self, callback: Callable[[], None]) -> None:
        self._on_leadership.append(callback)
        if self.is_leader:
            callback()

    def campaign(self) -> SimFuture:
        """Join the election; the returned future resolves when this
        candidate becomes leader."""
        sim = self.zk.service.sim
        if self._leader_future is not None:
            return self._leader_future
        self._leader_future = sim.future()
        proc = sim.process(self._campaign_process())
        proc.add_callback(self._propagate_failure)
        return self._leader_future

    def _propagate_failure(self, proc: SimFuture) -> None:
        if proc.exception is not None and not self._leader_future.done:
            self._leader_future.set_exception(proc.exception)

    def _campaign_process(self):
        yield self.zk.ensure_path(self.election_path)
        created = yield self.zk.create(
            f"{self.election_path}/candidate-",
            data=self.candidate_id.encode("utf-8"),
            ephemeral=True,
            sequential=True,
        )
        self.my_node = created
        my_name = created.rsplit("/", 1)[1]
        while True:
            children = yield self.zk.get_children(self.election_path)
            ordered = sorted(children)
            if ordered and ordered[0] == my_name:
                self._leader_future.set_result(self.candidate_id)
                for callback in self._on_leadership:
                    callback()
                return
            # Watch the candidate immediately ahead of us.
            my_index = ordered.index(my_name)
            predecessor = f"{self.election_path}/{ordered[my_index - 1]}"
            changed = self.zk.service.sim.future()

            def on_change(_: WatchEvent) -> None:
                if not changed.done:
                    changed.set_result(None)

            stat = yield self.zk.exists(predecessor)
            if stat is None:
                continue  # predecessor vanished between list and watch
            self.zk.watch_data(predecessor, on_change)
            yield changed

    def resign(self) -> SimFuture:
        """Leave the election (deletes our candidate node)."""
        if self.my_node is None:
            fut = self.zk.service.sim.future()
            fut.set_result(None)
            return fut
        node, self.my_node = self.my_node, None
        result = self.zk.service.sim.future()
        delete = self.zk.delete(node)

        def on_done(fut: SimFuture) -> None:
            if isinstance(fut.exception, NoNodeError) or fut.exception is None:
                result.set_result(None)
            else:
                result.set_exception(fut.exception)

        delete.add_callback(on_done)
        return result
