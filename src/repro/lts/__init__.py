"""Long-term storage backends (Pravega's LTS tier, §2.2/§4.3)."""

from repro.lts.backends import FileSystemLTS, InMemoryLTS, NoOpLTS, ObjectStoreLTS
from repro.lts.base import LongTermStorage, LtsSpec

__all__ = [
    "LongTermStorage",
    "LtsSpec",
    "FileSystemLTS",
    "ObjectStoreLTS",
    "NoOpLTS",
    "InMemoryLTS",
]
