"""Long-term storage (LTS) interface and the shared transfer model.

LTS is the primary, scale-out storage for stream data (§2.2): Pravega
asynchronously migrates WAL data to it and serves historical reads from
it.  The paper uses AWS EFS (NFS) for Pravega and AWS S3 for Pulsar and
measures both at ~160 MB/s *per file/object transfer* (§5.7), while
Pravega's parallel chunk reads reach 731 MB/s aggregate — so the model
distinguishes per-stream bandwidth from aggregate bandwidth.

Chunks are immutable, write-once blobs: "Pravega stores chunks (i.e.,
contiguous range of segment bytes) and segments are made up of a sequence
of non-overlapping chunks.  Note that chunks themselves do not include
additional metadata" (§4.3).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import NoSuchChunkError, StorageError
from repro.common.payload import Payload
from repro.sim.core import SimFuture, Simulator
from repro.sim.resources import FifoServer

__all__ = ["LtsSpec", "LongTermStorage", "ThrottledTransferModel"]

#: transfers are interleaved at this granularity for fairness
_SLICE = 4 * 1024 * 1024


@dataclass(frozen=True)
class LtsSpec:
    """Performance envelope of an LTS backend."""

    #: bandwidth available to a single transfer (the ~160 MB/s of §5.7)
    per_stream_bandwidth: float = 160e6
    #: bandwidth across all concurrent transfers
    aggregate_bandwidth: float = 800e6
    #: fixed latency per operation (metadata + first byte)
    op_latency: float = 3e-3
    name: str = "lts"


class ThrottledTransferModel:
    """Shared implementation of the two-level bandwidth model."""

    def __init__(self, sim: Simulator, spec: LtsSpec) -> None:
        self.sim = sim
        self.spec = spec
        self._aggregate = FifoServer(sim, name=f"{spec.name}-aggregate")
        self.bytes_in = 0
        self.bytes_out = 0

    def transfer(self, nbytes: int, inbound: bool) -> SimFuture:
        """Move ``nbytes`` to (inbound) or from the backend.

        A single transfer is paced at ``per_stream_bandwidth``; all
        concurrent transfers share ``aggregate_bandwidth``.
        """
        if inbound:
            self.bytes_in += nbytes
        else:
            self.bytes_out += nbytes

        def run():
            yield self.sim.timeout(self.spec.op_latency)
            remaining = nbytes
            while remaining > 0:
                piece = min(remaining, _SLICE)
                remaining -= piece
                aggregate_time = piece / self.spec.aggregate_bandwidth
                stream_time = piece / self.spec.per_stream_bandwidth
                yield self._aggregate.submit(aggregate_time)
                pacing = stream_time - aggregate_time
                if pacing > 0:
                    yield self.sim.timeout(pacing)

        return self.sim.process(run())


class LongTermStorage(abc.ABC):
    """Abstract chunk store: write-once chunks addressed by name."""

    def __init__(self, sim: Simulator, spec: Optional[LtsSpec] = None) -> None:
        self.sim = sim
        self.spec = spec or LtsSpec()
        self._transfers = ThrottledTransferModel(sim, self.spec)
        self._chunks: Dict[str, Payload] = {}

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def write_chunk(self, name: str, payload: Payload) -> SimFuture:
        """Store an immutable chunk; resolves when the data is durable."""
        if name in self._chunks:
            fut = self.sim.future()
            fut.set_exception(StorageError(f"chunk exists: {name}"))
            return fut

        def run():
            yield self._transfers.transfer(payload.size, inbound=True)
            yield self.sim.timeout(self._commit_latency())
            self._chunks[name] = payload
            return name

        return self.sim.process(run())

    def read_chunk(
        self, name: str, offset: int = 0, length: Optional[int] = None
    ) -> SimFuture:
        """Read [offset, offset+length) of the chunk; resolves with a Payload."""
        fut_error = self._missing(name)
        if fut_error is not None:
            return fut_error
        chunk = self._chunks[name]
        end = chunk.size if length is None else min(offset + length, chunk.size)
        if offset > chunk.size:
            fut = self.sim.future()
            fut.set_exception(
                StorageError(f"read past end of {name}: {offset} > {chunk.size}")
            )
            return fut
        piece = chunk.slice(offset, end)

        def run():
            yield self._transfers.transfer(piece.size, inbound=False)
            return piece

        return self.sim.process(run())

    def delete_chunk(self, name: str) -> SimFuture:
        fut_error = self._missing(name)
        if fut_error is not None:
            return fut_error

        def run():
            yield self.sim.timeout(self.spec.op_latency)
            self._chunks.pop(name, None)

        return self.sim.process(run())

    # ------------------------------------------------------------------
    # Synchronous inspection helpers (no simulated cost; tests/metrics)
    # ------------------------------------------------------------------
    def exists(self, name: str) -> bool:
        return name in self._chunks

    def chunk_size(self, name: str) -> int:
        if name not in self._chunks:
            raise NoSuchChunkError(name)
        return self._chunks[name].size

    def list_chunks(self, prefix: str = "") -> List[str]:
        return sorted(n for n in self._chunks if n.startswith(prefix))

    def total_bytes(self) -> int:
        return sum(p.size for p in self._chunks.values())

    @property
    def bytes_written(self) -> int:
        return self._transfers.bytes_in

    @property
    def bytes_read(self) -> int:
        return self._transfers.bytes_out

    # ------------------------------------------------------------------
    def _missing(self, name: str) -> Optional[SimFuture]:
        if name not in self._chunks:
            fut = self.sim.future()
            fut.set_exception(NoSuchChunkError(name))
            return fut
        return None

    def _commit_latency(self) -> float:
        """Extra latency to make a chunk visible after upload (backend-specific)."""
        return 0.0
