"""Concrete LTS backends.

* :class:`FileSystemLTS` — models AWS EFS / NFS (what the paper configures
  for Pravega, Table 1): moderate per-op latency, ~160 MB/s per stream.
* :class:`ObjectStoreLTS` — models AWS S3 (what the paper configures for
  Pulsar's offloader): higher per-request latency, similar per-stream
  throughput (§5.7 measured EFS and S3 "very similar ... 160MBps approx").
* :class:`NoOpLTS` — the test feature of §5.4: "allows Pravega to write
  only metadata to LTS and no data", used to show that single-segment
  write throughput is LTS-bound.
* :class:`InMemoryLTS` — zero-latency backend for unit tests.
"""

from __future__ import annotations

from typing import Optional

from repro.common.payload import Payload
from repro.lts.base import LongTermStorage, LtsSpec
from repro.sim.core import SimFuture, Simulator

__all__ = ["FileSystemLTS", "ObjectStoreLTS", "NoOpLTS", "InMemoryLTS"]


class FileSystemLTS(LongTermStorage):
    """NFS-flavoured chunk store (AWS EFS in the paper's deployment)."""

    def __init__(self, sim: Simulator, spec: Optional[LtsSpec] = None) -> None:
        super().__init__(
            sim,
            spec
            or LtsSpec(
                per_stream_bandwidth=160e6,
                aggregate_bandwidth=800e6,
                op_latency=3e-3,
                name="efs",
            ),
        )


class ObjectStoreLTS(LongTermStorage):
    """S3-flavoured chunk store: higher request latency, visible-after-PUT."""

    def __init__(self, sim: Simulator, spec: Optional[LtsSpec] = None) -> None:
        super().__init__(
            sim,
            spec
            or LtsSpec(
                per_stream_bandwidth=160e6,
                aggregate_bandwidth=1000e6,
                op_latency=15e-3,
                name="s3",
            ),
        )

    def _commit_latency(self) -> float:
        # PUT completion includes replication inside the object store.
        return 5e-3


class NoOpLTS(LongTermStorage):
    """Metadata-only LTS (§5.4): accepts chunks instantly, stores nothing.

    Reading a chunk returns synthetic bytes of the recorded size — the
    chunk *names and sizes* are tracked so tiering metadata stays
    consistent, but no data transfer cost is paid in either direction.
    """

    def __init__(self, sim: Simulator) -> None:
        super().__init__(
            sim,
            LtsSpec(
                per_stream_bandwidth=float("inf"),
                aggregate_bandwidth=float("inf"),
                op_latency=1e-4,
                name="noop",
            ),
        )

    def write_chunk(self, name: str, payload: Payload) -> SimFuture:
        # Keep only the size; drop content.
        return super().write_chunk(name, Payload.synthetic(payload.size))


class InMemoryLTS(LongTermStorage):
    """Instantaneous chunk store for unit tests (no simulated latency)."""

    def __init__(self, sim: Simulator) -> None:
        super().__init__(
            sim,
            LtsSpec(
                per_stream_bandwidth=float("inf"),
                aggregate_bandwidth=float("inf"),
                op_latency=0.0,
                name="memory",
            ),
        )
