"""Cluster-scale fluid macroscope: 10^5 tenants on one core.

The hybrid fluid/discrete kernel (:mod:`repro.sim.fluid`) accelerates a
*single* workload run by replacing per-message events with conservation
laws.  This module applies the same fluid limit one level up: an entire
multi-tenant cluster — far beyond what any discrete run could hold —
modelled as coupled flows over a shared capacity.

The model is **anchored to the discrete simulator**, not to constants:

* :func:`calibrate_scale` runs two short *hybrid* (fluid-accelerated)
  probes through the real bench driver — a low-rate run for the base
  ack latency and kernel cost per event, and a max-throughput search
  for the per-segment and per-store byte capacity.  The macroscope
  inherits whatever the discrete stack actually does (journal group
  commit, tiering backpressure, batching), because that is what the
  probes measured.
* Tenants are assigned a class, a home segment and a diurnal phase by
  :func:`~repro.common.hashing.stable_hash64` — the same stateless
  uniform assignment the segment store uses — so two runs of the same
  spec are identical and any tenant's placement can be recomputed
  without storing 10^5 rows.
* Each tenant's offered load is a :class:`~repro.workload.arrival.Diurnal`
  cycle ``m (1 - a cos(omega (t - phase)))``.  Summing the cosine over a
  segment's tenants factorizes exactly: per (segment, class) only three
  aggregates — tenant count ``N`` and the phase moments
  ``C = sum cos(omega phase_i)``, ``S = sum sin(omega phase_i)`` — are
  needed to evaluate the *exact* aggregate of all individual tenant
  sinusoids at any ``t``.  Per step the cost is O(segments x classes),
  while the modelled population stays truly per-tenant.
* Per segment, a fluid queue: service is the calibrated segment cap,
  scaled down when the owning store oversubscribes (processor sharing
  across the store's segments); backlog integrates inflow minus
  service; latency is the calibrated base plus an M/M/1-style
  congestion term plus backlog drain time.  Per-class SLO attainment
  counts tenant-steps whose segment latency meets the class target.

The output records modelled events and the kernel events that running
them discretely would have cost (``kernel_events_per_event`` from the
calibration probe) — the macroscope's entire point is that this number
is unpayable any other way.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.common.hashing import stable_hash64

__all__ = [
    "TenantClass",
    "ScaleSpec",
    "ScaleCalibration",
    "ScaleReport",
    "FluidScaleModel",
    "calibrate_scale",
]

_MAX_U64 = 2**64


@dataclass(frozen=True)
class TenantClass:
    """One tier of the tenant population."""

    name: str
    #: fraction of the population in this class (fractions must sum to 1)
    fraction: float
    #: mean offered rate per tenant, events/s
    mean_eps: float
    #: event payload size, bytes
    event_size: int
    #: diurnal swing as a fraction of the mean (0 = flat, 1 = full swing)
    amplitude: float
    #: per-class SLO: segment ack latency a tenant-step must stay under
    p99_latency: float


DEFAULT_CLASSES: Tuple[TenantClass, ...] = (
    TenantClass("small", 0.70, 5.0, 200, 0.6, 0.100),
    TenantClass("medium", 0.25, 50.0, 500, 0.5, 0.050),
    TenantClass("large", 0.05, 500.0, 1000, 0.4, 0.030),
)


@dataclass(frozen=True)
class ScaleSpec:
    """Shape of one macroscope scenario."""

    tenants: int = 100_000
    segments: int = 1_000
    #: segment stores sharing capacity; segments map to stores uniformly
    stores: int = 16
    #: modelled horizon, simulated seconds (default: one day)
    horizon: float = 86_400.0
    #: integration stride, simulated seconds
    step: float = 300.0
    #: diurnal period, seconds
    period: float = 86_400.0
    #: fraction of the period tenant phases spread over.  Uniform phases
    #: over the whole period (1.0) cancel at scale — the aggregate of
    #: 10^5 independent sinusoids is flat to O(1/sqrt(N)).  Real tenant
    #: populations are phase-correlated (one geography wakes together),
    #: so the default concentrates phases in a quarter-period window and
    #: the aggregate keeps most of the per-tenant swing.
    phase_spread: float = 0.25
    classes: Tuple[TenantClass, ...] = DEFAULT_CLASSES
    seed: int = 7

    def validate(self) -> None:
        total = sum(c.fraction for c in self.classes)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"class fractions sum to {total}, expected 1.0")
        if self.tenants < 1 or self.segments < 1 or self.stores < 1:
            raise ValueError("tenants, segments and stores must be positive")
        if self.stores > self.segments:
            raise ValueError("more stores than segments")


@dataclass(frozen=True)
class ScaleCalibration:
    """What the discrete (hybrid-accelerated) probes measured."""

    #: unloaded ack latency, seconds (p50 of the low-rate probe)
    base_latency: float
    #: one segment's sustainable ingest, bytes/s
    segment_cap_bytes: float
    #: one store's sustainable aggregate ingest, bytes/s
    store_cap_bytes: float
    #: kernel events (heap + microtasks) per acknowledged app event
    kernel_events_per_event: float
    #: kernel events the calibration probes themselves spent
    probe_kernel_events: int
    #: wall seconds the calibration probes took
    probe_wall_seconds: float


@dataclass
class ScaleReport:
    """Everything one macroscope run produced."""

    spec: ScaleSpec
    calibration: ScaleCalibration
    #: per-class {offered, served, slo_attainment, worst_latency}
    classes: Dict[str, Dict[str, float]]
    #: total events the model carried over the horizon
    modelled_events: float
    #: kernel events a discrete run of the same traffic would have cost
    kernel_events_equivalent: float
    #: kernel events actually executed (the calibration probes)
    kernel_events_spent: int
    peak_store_utilization: float
    peak_backlog_seconds: float
    steps: int

    def summary(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            "tenants": float(self.spec.tenants),
            "segments": float(self.spec.segments),
            "modelled_events": self.modelled_events,
            "kernel_events_equivalent": self.kernel_events_equivalent,
            "kernel_events_spent": float(self.kernel_events_spent),
            "kernel_events_avoided": max(
                0.0, self.kernel_events_equivalent - self.kernel_events_spent
            ),
            "peak_store_utilization": self.peak_store_utilization,
            "peak_backlog_seconds": self.peak_backlog_seconds,
            "steps": float(self.steps),
        }
        for name, stats in self.classes.items():
            out[f"slo_attainment.{name}"] = stats["slo_attainment"]
            out[f"availability.{name}"] = stats["availability"]
        return out


def calibrate_scale(
    event_size: int = 500,
    low_rate: float = 5_000.0,
    use_fluid: bool = True,
) -> ScaleCalibration:
    """Anchor the macroscope to the discrete simulator with short probes.

    Probe 1 (low rate) measures the unloaded ack latency and the kernel
    cost per event; probes 2/3 (max-throughput searches at 1 and 16
    segments) measure the per-segment and per-store byte capacity.  With
    ``use_fluid`` the searches run under the hybrid fluid/discrete
    kernel — the tentpole paying for its own calibration.
    """
    import dataclasses
    import time

    from repro.bench import (
        PravegaAdapter,
        WorkloadSpec,
        find_max_throughput,
        run_workload,
    )
    from repro.sim import Simulator
    from repro.sim.fluid import FluidSpec

    fluid = FluidSpec() if use_fluid else None
    wall0 = time.perf_counter()
    probe_sims: List[Simulator] = []

    def _spec(partitions: int, rate: float) -> WorkloadSpec:
        return WorkloadSpec(
            event_size=event_size,
            target_rate=rate,
            partitions=partitions,
            producers=1,
            consumers=0,
            duration=2.0,
            warmup=0.5,
            fluid=fluid,
        )

    # Probe 1: unloaded latency + kernel cost per event (discrete — the
    # kernel-cost ratio must come from real per-message execution).
    sim = Simulator()
    probe_sims.append(sim)
    adapter = PravegaAdapter(sim, journal_sync=True)
    result = run_workload(
        sim, adapter, dataclasses.replace(_spec(1, low_rate), fluid=None)
    )
    kernel_events = sim.stats.events_executed + sim.stats.microtasks_executed
    produced = result.produce_rate * 2.0  # measurement window is 2 s
    base_latency = result.write_latency.p50
    per_event = kernel_events / max(produced, 1.0)

    # Probes 2/3: capacity searches (hybrid-accelerated when enabled).
    # The factory sees every Simulator the search spins up; keeping the
    # references lets us bill the probes' true kernel-event cost.
    def _make(s: Simulator):
        probe_sims.append(s)
        return PravegaAdapter(s, journal_sync=True)

    def _probe_cap(partitions: int) -> float:
        best = find_max_throughput(
            _make,
            _spec(partitions, 0),
            start_rate=100_000,
            growth=2.0,
            refine_steps=1,
            max_rate=4_000_000,
        )
        return best.produce_rate * event_size

    segment_cap = _probe_cap(1)
    store_cap = max(_probe_cap(16), segment_cap)

    spent = sum(
        s.stats.events_executed + s.stats.microtasks_executed for s in probe_sims
    )
    return ScaleCalibration(
        base_latency=base_latency,
        segment_cap_bytes=segment_cap,
        store_cap_bytes=store_cap,
        kernel_events_per_event=per_event,
        probe_kernel_events=spent,
        probe_wall_seconds=time.perf_counter() - wall0,
    )


class FluidScaleModel:
    """The macroscope: exact per-tenant diurnal aggregation + fluid queues."""

    def __init__(self, spec: ScaleSpec, calibration: ScaleCalibration) -> None:
        spec.validate()
        self.spec = spec
        self.cal = calibration
        n_seg = spec.segments
        n_cls = len(spec.classes)
        # Per (segment, class) aggregates: tenant count and the phase
        # moments sum(cos omega*phase_i), sum(sin omega*phase_i).
        self.counts = [[0.0] * n_cls for _ in range(n_seg)]
        self.cos_m = [[0.0] * n_cls for _ in range(n_seg)]
        self.sin_m = [[0.0] * n_cls for _ in range(n_seg)]
        # Class thresholds over [0, 1) for the hash-based assignment.
        edges: List[float] = []
        acc = 0.0
        for cls in spec.classes:
            acc += cls.fraction
            edges.append(acc)
        omega = 2.0 * math.pi / spec.period
        seed = spec.seed
        two_pi = 2.0 * math.pi
        for i in range(spec.tenants):
            h = stable_hash64(f"{seed}:tenant:{i}")
            u_class = (h & 0xFFFFF) / float(1 << 20)
            cls_idx = n_cls - 1
            for j, edge in enumerate(edges):
                if u_class < edge:
                    cls_idx = j
                    break
            segment = (h >> 20) % n_seg
            phase = (
                ((h >> 40) & 0xFFFFFF) / float(1 << 24) * spec.phase_spread * two_pi
            )
            self.counts[segment][cls_idx] += 1.0
            self.cos_m[segment][cls_idx] += math.cos(phase)
            self.sin_m[segment][cls_idx] += math.sin(phase)
        self.omega = omega
        #: segment -> store (uniform hash, like segment->container §2.2)
        self.store_of = [
            stable_hash64(f"{seed}:segment:{s}") % spec.stores for s in range(n_seg)
        ]

    # ------------------------------------------------------------------
    def offered_eps(self, t: float) -> List[List[float]]:
        """Exact aggregate events/s per (segment, class) at time ``t``."""
        cos_t = math.cos(self.omega * t)
        sin_t = math.sin(self.omega * t)
        classes = self.spec.classes
        out: List[List[float]] = []
        for counts, cos_m, sin_m in zip(self.counts, self.cos_m, self.sin_m):
            row = []
            for c, cls in enumerate(classes):
                # sum_i m (1 - a cos(omega t - phase_i))
                #   = m (N - a (cos(omega t) C + sin(omega t) S))
                rate = cls.mean_eps * (
                    counts[c]
                    - cls.amplitude * (cos_t * cos_m[c] + sin_t * sin_m[c])
                )
                row.append(max(rate, 0.0))
            out.append(row)
        return out

    # ------------------------------------------------------------------
    def run(self) -> ScaleReport:
        spec = self.spec
        cal = self.cal
        classes = spec.classes
        n_cls = len(classes)
        n_seg = spec.segments
        dt = spec.step
        steps = max(1, int(round(spec.horizon / dt)))
        seg_cap = max(cal.segment_cap_bytes, 1.0)
        store_cap = max(cal.store_cap_bytes, seg_cap)
        base = cal.base_latency
        backlog = [0.0] * n_seg  # bytes queued per segment
        offered_tot = [0.0] * n_cls
        served_tot = [0.0] * n_cls
        good_steps = [0.0] * n_cls
        total_steps = [0.0] * n_cls
        worst_latency = [0.0] * n_cls
        peak_util = 0.0
        peak_backlog_s = 0.0
        store_load = [0.0] * spec.stores
        store_demand = [0.0] * spec.stores
        for k in range(steps):
            t = (k + 0.5) * dt
            rates = self.offered_eps(t)
            # Pass 1: per-segment offered bytes + demand (inflow plus the
            # standing backlog it wants drained this stride), aggregated
            # per store.  A segment can never pull more than its own cap.
            for s in range(spec.stores):
                store_load[s] = 0.0
                store_demand[s] = 0.0
            seg_bytes = [0.0] * n_seg
            seg_demand = [0.0] * n_seg
            for s in range(n_seg):
                row = rates[s]
                nbytes = 0.0
                for c in range(n_cls):
                    nbytes += row[c] * classes[c].event_size
                seg_bytes[s] = nbytes
                demand = min(nbytes + backlog[s] / dt, seg_cap)
                seg_demand[s] = demand
                store = self.store_of[s]
                store_load[store] += nbytes
                store_demand[store] += demand
            for s in range(spec.stores):
                util = store_load[s] / store_cap
                if util > peak_util:
                    peak_util = util
            # Pass 2: processor sharing — an oversubscribed store serves
            # every segment the same fraction of its demand.
            for s in range(n_seg):
                store = self.store_of[s]
                store_scale = min(1.0, store_cap / max(store_demand[store], 1e-9))
                inflow = seg_bytes[s]
                demand = seg_demand[s]
                served = demand * store_scale
                backlog[s] = max(backlog[s] + (inflow - served) * dt, 0.0)
                drain_rate = max(seg_cap * store_scale, 1.0)
                drain_s = backlog[s] / drain_rate
                if drain_s > peak_backlog_s:
                    peak_backlog_s = drain_s
                rho = min(
                    max(inflow / seg_cap, store_load[store] / store_cap), 0.999
                )
                latency = base * (1.0 + rho * rho / (2.0 * (1.0 - rho))) + drain_s
                served_frac = min(served / demand, 1.0) if demand > 0.0 else 1.0
                row = rates[s]
                for c in range(n_cls):
                    ev = row[c] * dt
                    if ev <= 0.0:
                        continue
                    offered_tot[c] += ev
                    served_tot[c] += ev * served_frac
                    total_steps[c] += 1.0
                    if latency <= classes[c].p99_latency:
                        good_steps[c] += 1.0
                    if latency > worst_latency[c]:
                        worst_latency[c] = latency
        per_class: Dict[str, Dict[str, float]] = {}
        for c, cls in enumerate(classes):
            per_class[cls.name] = {
                "offered_events": offered_tot[c],
                "served_events": served_tot[c],
                "availability": (
                    served_tot[c] / offered_tot[c] if offered_tot[c] else 1.0
                ),
                "slo_attainment": (
                    good_steps[c] / total_steps[c] if total_steps[c] else 1.0
                ),
                "worst_latency": worst_latency[c],
            }
        modelled = sum(offered_tot)
        return ScaleReport(
            spec=spec,
            calibration=cal,
            classes=per_class,
            modelled_events=modelled,
            kernel_events_equivalent=modelled * cal.kernel_events_per_event,
            kernel_events_spent=cal.probe_kernel_events,
            peak_store_utilization=peak_util,
            peak_backlog_seconds=peak_backlog_s,
            steps=steps,
        )
