"""Per-tenant SLO evaluation: windowed SLIs, error budget, burn rate.

Semantics (SRE-standard, evaluated over the measurement window):

* **Availability SLI** — acknowledged events / offered events.  The
  error budget is ``1 - availability_target``; the **burn rate** is the
  bad-event fraction divided by the budget (burn <= 1 means the tenant
  finished the run with budget to spare).  Events still unacknowledged
  when the window closes count against the budget — an infinitely
  latent ack is indistinguishable from a loss to the tenant.
* **Latency SLI** — the run is bucketed into fixed windows
  (``window`` seconds); a window is *good* when its p99 write latency is
  under ``p99_latency``.  The latency compliance is good windows /
  total windows, compared against ``latency_compliance``.

* **Read SLI** (opt-in) — when ``read_p99_latency`` is set, the same
  windowing applies to end-to-end write→tail-delivery latencies fed via
  ``on_delivery``; a read-serving tenant's SLO then also requires the
  read-latency compliance to clear ``latency_compliance``.  When unset,
  the report carries no read keys at all.

``SloTracker`` doubles as the runner's observer (``on_sent`` /
``on_ack`` / ``on_delivery`` hooks), so SLO accounting rides the
existing ack and delivery paths with no extra simulation events.
Reports flatten into ``BenchResult.extra`` as ``slo.*`` floats
(JSON-ready for the figure suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.metrics import percentile

__all__ = [
    "SloSpec",
    "SloTracker",
    "capacity_report",
    "slo_margin",
    "sustainable_verdict",
]


@dataclass(frozen=True)
class SloSpec:
    """A tenant's service-level objective."""

    #: p99 write (ack) latency target per evaluation window, seconds
    p99_latency: float = 0.050
    #: fraction of offered events that must be acknowledged
    availability: float = 0.999
    #: evaluation window length, seconds
    window: float = 1.0
    #: required fraction of windows meeting the p99 target
    latency_compliance: float = 0.95
    #: p99 end-to-end (write -> tail delivery) latency target, seconds;
    #: None leaves read SLIs out of the report entirely (write-only
    #: tenants keep their committed metrics byte-identical)
    read_p99_latency: Optional[float] = None


@dataclass
class _Window:
    sent: int = 0
    acked: int = 0
    failed: int = 0
    latencies: List[float] = field(default_factory=list)
    delivered: int = 0
    read_latencies: List[float] = field(default_factory=list)


class SloTracker:
    """Windowed SLO accounting fed by the workload engine."""

    def __init__(self, spec: SloSpec, start: float, end: float) -> None:
        self.spec = spec
        self.start = start
        self.end = end
        self._windows: Dict[int, _Window] = {}

    def _window(self, now: float) -> Optional[_Window]:
        if not (self.start <= now < self.end):
            return None
        index = int((now - self.start) / self.spec.window)
        win = self._windows.get(index)
        if win is None:
            win = self._windows[index] = _Window()
        return win

    # -- observer hooks (called from the runner's hot path) ------------
    def on_sent(self, now: float, count: int) -> None:
        win = self._window(now)
        if win is not None:
            win.sent += count

    def on_ack(self, send_time: float, count: int, latency: float, ok: bool) -> None:
        # Attribution is by *send* time: a tenant judges the request it
        # offered in a window, however late the ack straggles in.
        win = self._window(send_time)
        if win is None:
            return
        if ok:
            win.acked += count
            win.latencies.append(latency)
        else:
            win.failed += count

    def on_delivery(self, send_time: float, count: int, latency: float) -> None:
        """An event batch reached a tail consumer (read-path SLI).

        Like acks, attribution is by send time.  Cheap no-op windowing
        when the tenant has no read SLO configured — the runner calls
        this on every delivery."""
        if self.spec.read_p99_latency is None:
            return
        win = self._window(send_time)
        if win is not None:
            win.delivered += count
            win.read_latencies.append(latency)

    # -- evaluation ----------------------------------------------------
    def report(self) -> Dict[str, float]:
        spec = self.spec
        total_windows = max(1, int(round((self.end - self.start) / spec.window)))
        sent = acked = failed = delivered = 0
        latency_bad = read_bad = 0
        worst_p99 = worst_read_p99 = 0.0
        for index in range(total_windows):
            win = self._windows.get(index, _Window())
            sent += win.sent
            acked += win.acked
            failed += win.failed
            delivered += win.delivered
            if win.latencies:
                p99 = percentile(sorted(win.latencies), 0.99)
            elif win.sent:
                p99 = float("inf")  # offered but nothing acked: latency ran away
            else:
                p99 = 0.0
            worst_p99 = max(worst_p99, p99)
            if p99 > spec.p99_latency:
                latency_bad += 1
            if spec.read_p99_latency is not None:
                if win.read_latencies:
                    read_p99 = percentile(sorted(win.read_latencies), 0.99)
                elif win.sent:
                    read_p99 = float("inf")  # offered, nothing delivered
                else:
                    read_p99 = 0.0
                worst_read_p99 = max(worst_read_p99, read_p99)
                if read_p99 > spec.read_p99_latency:
                    read_bad += 1
        availability = acked / sent if sent else 1.0
        budget = 1.0 - spec.availability
        burn_rate = (1.0 - availability) / budget if budget > 0 else (
            0.0 if availability >= 1.0 else float("inf")
        )
        compliance = (total_windows - latency_bad) / total_windows
        ok = burn_rate <= 1.0 and compliance >= spec.latency_compliance
        out = {
            "windows": float(total_windows),
            "latency_bad_windows": float(latency_bad),
            "latency_compliance": compliance,
            "worst_window_p99": worst_p99,
            "offered": float(sent),
            "acked": float(acked),
            "failed": float(failed),
            "availability": availability,
            "burn_rate": burn_rate,
            "budget_remaining": max(0.0, 1.0 - burn_rate),
        }
        if spec.read_p99_latency is not None:
            # Read SLI keys are emitted only when a read target is set so
            # write-only tenants' committed reports stay byte-identical.
            read_compliance = (total_windows - read_bad) / total_windows
            ok = ok and read_compliance >= spec.latency_compliance
            out["delivered"] = float(delivered)
            out["read_latency_bad_windows"] = float(read_bad)
            out["read_compliance"] = read_compliance
            out["worst_window_read_p99"] = worst_read_p99
        out["ok"] = 1.0 if ok else 0.0
        return out

    def emit(self, extra: Dict[str, float], prefix: str = "slo.") -> None:
        for key, value in self.report().items():
            extra[f"{prefix}{key}"] = value


def slo_margin(report: Dict[str, float], spec: SloSpec) -> float:
    """Signed SLO headroom of one tenant report, in budget units.

    The margin is the minimum of two normalized slacks:

    * **error budget** — ``1 - burn_rate``: 0 means the availability
      budget is exactly spent, negative means overspent;
    * **latency compliance** — the compliance surplus over the target,
      normalized by the allowed bad-window fraction, so "one spare bad
      window" scores comparably to "one spare nine".

    Feasibility for the capacity planner is ``margin > 0``; the value
    itself is the distance to the SLO boundary, which the planner
    records per probe so a capacity map shows *how close* each found
    rate sits to the cliff.
    """
    budget_slack = 1.0 - report.get("burn_rate", 0.0)
    required = spec.latency_compliance
    allowed_bad = max(1.0 - required, 1e-9)
    latency_slack = (report.get("latency_compliance", 1.0) - required) / allowed_bad
    return min(budget_slack, latency_slack)


def sustainable_verdict(result, tenants) -> Dict[str, object]:
    """Feasibility verdict for one multi-tenant probe run.

    ``result`` is a :class:`~repro.workload.tenants.MultiTenantResult`;
    ``tenants`` the ``TenantSpec`` sequence that produced it.  A rate is
    *sustainable* (Karimov et al.'s definition) when every tenant's SLO
    held, no backend crashed, and the run completed without hitting its
    load timeout — the timeout is the "unbounded backlog" signal: an
    open loop that cannot drain its backlog cap never finishes load
    generation.
    """
    margins: Dict[str, float] = {}
    crashed = False
    for tenant in tenants:
        report = result.slo[tenant.name]
        margins[tenant.name] = slo_margin(report, tenant.slo)
        crashed = crashed or result.results[tenant.name].crashed
    margin = min(margins.values()) if margins else 0.0
    if not result.completed:
        # backlog never drained: the violation is at least a full budget
        margin = min(margin, -1.0)
    if crashed:
        margin = min(margin, -1.0)
    feasible = result.completed and not crashed and margin > 0.0
    headrooms = [c["headroom"] for c in result.capacity.values()]
    return {
        "feasible": feasible,
        "margin": margin,
        "margins": margins,
        "completed": result.completed,
        "crashed": crashed,
        "min_headroom": min(headrooms) if headrooms else 1.0,
    }


def capacity_report(tenant_reports: Dict[str, Dict[str, float]]) -> Dict[str, Dict[str, float]]:
    """Cross-tenant capacity summary from per-tenant SLO reports.

    ``headroom`` is the acked/offered ratio (1.0 = keeping up); a tenant
    with headroom < 1 and a busted budget is under-provisioned, while
    ``ok`` tenants with headroom ~1.0 have room for rate growth.
    """
    out: Dict[str, Dict[str, float]] = {}
    for name, report in tenant_reports.items():
        offered = report.get("offered", 0.0)
        acked = report.get("acked", 0.0)
        out[name] = {
            "headroom": acked / offered if offered else 1.0,
            "burn_rate": report.get("burn_rate", 0.0),
            "latency_compliance": report.get("latency_compliance", 1.0),
            "meets_slo": report.get("ok", 0.0),
        }
    return out
