"""Deterministic, sim-seeded arrival processes.

The benchmark driver (``bench/runner.py``) historically offered one
traffic shape: a constant open-loop rate.  Realistic evaluations of
auto-scaling and tiering need time-varying load — "sustainable
throughput" surveys (Karimov et al.) treat the arrival process as part
of the workload definition, not an afterthought.  This module provides
composable rate functions:

* :class:`Constant` — the classic OMB fixed rate
* :class:`Poisson` — stochastic counts around a (possibly time-varying)
  mean rate
* :class:`Ramp` — linear rate change over a window
* :class:`Diurnal` — sinusoidal day/night cycle (trough -> peak -> trough)
* :class:`MMPP` — 2-state Markov-modulated Poisson process (bursty)
* :class:`FlashCrowd` — baseline with a sudden spike (rise/hold/fall)
* :class:`Piecewise` — replay of an arbitrary (time, rate) trace

Every process separates its *shape* (``rate(t)``, pure and stateless)
from its *sampler* (``sampler(seed, fraction)``), the stateful object a
producer uses to draw per-tick event counts.  Samplers are seeded with
:func:`repro.common.hashing.stable_hash64`, so counts are bit-identical
across runs and across ``--jobs`` fan-out, and never consult wall-clock
or global RNG state.

Composition: ``a + b`` superimposes two processes (rates add; samplers
draw from each independently).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.common.hashing import stable_hash64

__all__ = [
    "ArrivalProcess",
    "ArrivalSampler",
    "Constant",
    "Poisson",
    "Ramp",
    "Diurnal",
    "MMPP",
    "FlashCrowd",
    "Piecewise",
    "Composite",
]


class ArrivalSampler:
    """Stateful per-producer event counter.

    ``events(t0, t1)`` returns how many events this producer generates in
    the simulated interval ``[t0, t1)``.  Implementations carry their own
    state (fractional-event carry, RNG, modulation phase) and must be
    deterministic functions of (process, seed, call sequence).
    """

    def events(self, t0: float, t1: float) -> int:  # pragma: no cover
        raise NotImplementedError


class ArrivalProcess:
    """A rate function ``rate(t)`` (events/second) plus sampling."""

    def rate(self, t: float) -> float:  # pragma: no cover
        raise NotImplementedError

    @property
    def peak_rate(self) -> float:
        """An upper bound on ``rate(t)`` (sizing backlog caps, capacity)."""
        raise NotImplementedError  # pragma: no cover

    def mean_events(self, t0: float, t1: float) -> float:
        """Expected events in ``[t0, t1)`` (trapezoid; exact for linear
        pieces, and ticks are short relative to any curvature here)."""
        return 0.5 * (self.rate(t0) + self.rate(t1)) * (t1 - t0)

    def mean_rate(self, t0: float, t1: float, steps: int = 256) -> float:
        """Average rate over ``[t0, t1]`` by deterministic integration."""
        if t1 <= t0:
            return self.rate(t0)
        dt = (t1 - t0) / steps
        total = 0.0
        for i in range(steps):
            total += self.mean_events(t0 + i * dt, t0 + (i + 1) * dt)
        return total / (t1 - t0)

    def peak_time(self, t0: float, t1: float, steps: int = 512) -> float:
        """Time of the highest rate in ``[t0, t1]`` (grid scan; used to
        align fault injection with a burst — see repro.workload.faults)."""
        best_t, best_r = t0, self.rate(t0)
        for i in range(1, steps + 1):
            t = t0 + (t1 - t0) * i / steps
            r = self.rate(t)
            if r > best_r:
                best_t, best_r = t, r
        return best_t

    def sampler(self, seed: int, fraction: float = 1.0) -> ArrivalSampler:
        """Sampler for one producer carrying ``fraction`` of the load."""
        return _CarrySampler(self, fraction)

    def steady_until(self, t: float, horizon: float, tolerance: float = 0.05) -> float:
        """Last instant in ``[t, horizon]`` where the rate still matches
        ``rate(t)`` within ``tolerance`` (relative, floored at 1 eps).

        This is the fluid controller's rate-function export: an analytic
        span may extend at most to here before the offered load drifts
        from what the calibration slice measured.  Deterministic grid
        scan plus bisection refinement; stochastic shapes (MMPP) override
        this to return ``t`` since their sample path never holds steady.
        """
        if horizon <= t:
            return horizon
        r0 = self.rate(t)
        slack = tolerance * max(abs(r0), 1.0)
        steps = 256
        dt = (horizon - t) / steps
        lo = t
        hi = None
        for i in range(1, steps + 1):
            probe = t + i * dt
            if abs(self.rate(probe) - r0) > slack:
                hi = probe
                break
            lo = probe
        if hi is None:
            return horizon
        for _ in range(24):
            mid = 0.5 * (lo + hi)
            if abs(self.rate(mid) - r0) > slack:
                hi = mid
            else:
                lo = mid
        return lo

    def __add__(self, other: "ArrivalProcess") -> "Composite":
        return Composite((self, other))


class _CarrySampler(ArrivalSampler):
    """Deterministic integration with fractional-event carry."""

    __slots__ = ("process", "fraction", "carry")

    def __init__(self, process: ArrivalProcess, fraction: float) -> None:
        self.process = process
        self.fraction = fraction
        self.carry = 0.0

    def events(self, t0: float, t1: float) -> int:
        self.carry += self.process.mean_events(t0, t1) * self.fraction
        count = int(self.carry)
        if count:
            self.carry -= count
        return count


def _poisson_draw(rng, lam: float) -> int:
    """One Poisson(lam) variate from ``rng`` (Knuth for small means,
    rounded-normal beyond — means here are per-tick, so small)."""
    if lam <= 0.0:
        return 0
    if lam > 64.0:
        return max(0, int(round(rng.gauss(lam, math.sqrt(lam)))))
    limit = math.exp(-lam)
    count = 0
    product = rng.random()
    while product > limit:
        count += 1
        product *= rng.random()
    return count


class _PoissonSampler(ArrivalSampler):
    __slots__ = ("process", "fraction", "rng")

    def __init__(self, process: ArrivalProcess, fraction: float, rng) -> None:
        self.process = process
        self.fraction = fraction
        self.rng = rng

    def events(self, t0: float, t1: float) -> int:
        return _poisson_draw(
            self.rng, self.process.mean_events(t0, t1) * self.fraction
        )


def _seeded_rng(seed: int, tag: str):
    import random

    return random.Random(stable_hash64(f"workload:{tag}:{seed}"))


# ----------------------------------------------------------------------
# Shapes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Constant(ArrivalProcess):
    """Fixed rate — the legacy driver behaviour."""

    rate_eps: float

    def rate(self, t: float) -> float:
        return self.rate_eps

    @property
    def peak_rate(self) -> float:
        return self.rate_eps


@dataclass(frozen=True)
class Poisson(ArrivalProcess):
    """Poisson counts around a mean shape (default: constant rate).

    ``Poisson(1000.0)`` is a homogeneous Poisson process;
    ``Poisson(Diurnal(...))`` modulates the mean by any other shape.
    """

    mean: "ArrivalProcess | float"

    def _shape(self) -> ArrivalProcess:
        if isinstance(self.mean, ArrivalProcess):
            return self.mean
        return Constant(float(self.mean))

    def rate(self, t: float) -> float:
        return self._shape().rate(t)

    @property
    def peak_rate(self) -> float:
        return self._shape().peak_rate

    def sampler(self, seed: int, fraction: float = 1.0) -> ArrivalSampler:
        return _PoissonSampler(
            self._shape(), fraction, _seeded_rng(seed, "poisson")
        )


@dataclass(frozen=True)
class Ramp(ArrivalProcess):
    """Linear ramp from ``start_eps`` to ``end_eps`` over ``duration``."""

    start_eps: float
    end_eps: float
    duration: float
    begin: float = 0.0

    def rate(self, t: float) -> float:
        if t <= self.begin:
            return self.start_eps
        if t >= self.begin + self.duration:
            return self.end_eps
        frac = (t - self.begin) / self.duration
        return self.start_eps + (self.end_eps - self.start_eps) * frac

    @property
    def peak_rate(self) -> float:
        return max(self.start_eps, self.end_eps)


@dataclass(frozen=True)
class Diurnal(ArrivalProcess):
    """Sinusoidal cycle: trough at ``t = phase``, peak half a period later.

    ``rate(t) = trough + (peak - trough) * (1 - cos(2pi (t - phase)/period)) / 2``
    """

    trough_eps: float
    peak_eps: float
    period: float
    phase: float = 0.0

    def rate(self, t: float) -> float:
        swing = (self.peak_eps - self.trough_eps) / 2.0
        omega = 2.0 * math.pi * (t - self.phase) / self.period
        return self.trough_eps + swing * (1.0 - math.cos(omega))

    @property
    def peak_rate(self) -> float:
        return max(self.peak_eps, self.trough_eps)


@dataclass(frozen=True)
class FlashCrowd(ArrivalProcess):
    """Baseline load with one sudden spike (linear rise, hold, fall)."""

    base_eps: float
    spike_eps: float
    at: float
    rise: float = 1.0
    hold: float = 5.0
    fall: float = 5.0

    def rate(self, t: float) -> float:
        if t < self.at or t >= self.at + self.rise + self.hold + self.fall:
            return self.base_eps
        dt = t - self.at
        if dt < self.rise:
            return self.base_eps + (self.spike_eps - self.base_eps) * dt / self.rise
        if dt < self.rise + self.hold:
            return self.spike_eps
        frac = (dt - self.rise - self.hold) / self.fall
        return self.spike_eps + (self.base_eps - self.spike_eps) * frac

    @property
    def peak_rate(self) -> float:
        return max(self.base_eps, self.spike_eps)


@dataclass(frozen=True)
class Piecewise(ArrivalProcess):
    """Replay of a (time, rate) trace with linear interpolation."""

    points: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("Piecewise needs at least one (time, rate) point")
        times = [t for t, _ in self.points]
        if times != sorted(times):
            raise ValueError("Piecewise points must be time-ordered")

    def rate(self, t: float) -> float:
        points = self.points
        if t <= points[0][0]:
            return points[0][1]
        if t >= points[-1][0]:
            return points[-1][1]
        for (t0, r0), (t1, r1) in zip(points, points[1:]):
            if t0 <= t <= t1:
                if t1 == t0:
                    return r1
                return r0 + (r1 - r0) * (t - t0) / (t1 - t0)
        return points[-1][1]

    @property
    def peak_rate(self) -> float:
        return max(r for _, r in self.points)


@dataclass(frozen=True)
class MMPP(ArrivalProcess):
    """2-state Markov-modulated Poisson process (quiet/burst).

    The modulating chain dwells exponentially in each state
    (``mean_dwell[i]`` seconds) and emits Poisson counts at
    ``rates_eps[i]`` while there.  ``rate(t)`` reports the *stationary*
    mean (dwell-weighted) since the modulation is random; ``peak_rate``
    is the burst-state rate.
    """

    rates_eps: Tuple[float, float]
    mean_dwell: Tuple[float, float] = (8.0, 2.0)

    def rate(self, t: float) -> float:
        d0, d1 = self.mean_dwell
        r0, r1 = self.rates_eps
        return (r0 * d0 + r1 * d1) / (d0 + d1)

    @property
    def peak_rate(self) -> float:
        return max(self.rates_eps)

    @property
    def burst_factor(self) -> float:
        """Burst-state rate over the stationary mean rate."""
        return self.peak_rate / max(self.rate(0.0), 1e-12)

    def steady_until(self, t: float, horizon: float, tolerance: float = 0.05) -> float:
        # ``rate`` reports only the stationary mean; the sample path
        # flips between burst and quiet on dwell timescales, so no
        # window is ever fluid-steady.
        return t

    def sampler(self, seed: int, fraction: float = 1.0) -> ArrivalSampler:
        return _MMPPSampler(self, fraction, _seeded_rng(seed, "mmpp"))


class _MMPPSampler(ArrivalSampler):
    __slots__ = ("process", "fraction", "rng", "state", "residual")

    def __init__(self, process: MMPP, fraction: float, rng) -> None:
        self.process = process
        self.fraction = fraction
        self.rng = rng
        self.state = 0
        self.residual = rng.expovariate(1.0 / process.mean_dwell[0])

    def events(self, t0: float, t1: float) -> int:
        remaining = t1 - t0
        lam = 0.0
        while remaining > 0.0:
            span = min(remaining, self.residual)
            lam += self.process.rates_eps[self.state] * span
            self.residual -= span
            remaining -= span
            if self.residual <= 0.0:
                self.state = 1 - self.state
                self.residual = self.rng.expovariate(
                    1.0 / self.process.mean_dwell[self.state]
                )
        return _poisson_draw(self.rng, lam * self.fraction)


@dataclass(frozen=True)
class Composite(ArrivalProcess):
    """Superposition: rates add; each component samples independently."""

    parts: Tuple[ArrivalProcess, ...]

    def rate(self, t: float) -> float:
        return sum(p.rate(t) for p in self.parts)

    @property
    def peak_rate(self) -> float:
        # Upper bound: peaks may not coincide, but a cap must cover them.
        return sum(p.peak_rate for p in self.parts)

    def steady_until(self, t: float, horizon: float, tolerance: float = 0.05) -> float:
        # The sum can look flat while parts move (or one part is
        # stochastic); every component must hold steady on its own.
        return min(p.steady_until(t, horizon, tolerance) for p in self.parts)

    def sampler(self, seed: int, fraction: float = 1.0) -> ArrivalSampler:
        return _CompositeSampler(
            [
                p.sampler(stable_hash64(f"composite:{i}:{seed}"), fraction)
                for i, p in enumerate(self.parts)
            ]
        )


class _CompositeSampler(ArrivalSampler):
    __slots__ = ("parts",)

    def __init__(self, parts: List[ArrivalSampler]) -> None:
        self.parts = parts

    def events(self, t0: float, t1: float) -> int:
        return sum(p.events(t0, t1) for p in self.parts)
