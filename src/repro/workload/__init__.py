"""repro.workload — multi-tenant traffic patterns, key skew, SLOs.

Layers on top of the benchmark driver (``repro.bench``):

* :mod:`~repro.workload.arrival` — deterministic, sim-seeded arrival
  processes (constant, Poisson, ramp, diurnal, MMPP, flash crowd,
  piecewise replay) composable by superposition;
* :mod:`~repro.workload.skew` — key-popularity models (uniform, Zipf,
  hot-key churn) plugged into the driver's key spreading;
* :mod:`~repro.workload.slo` — per-tenant windowed SLO evaluation with
  error-budget / burn-rate accounting;
* :mod:`~repro.workload.tenants` — N tenants, each with its own stream,
  pattern, event size and SLO, multiplexed through one simulation, plus
  scale-event/offered-load correlation;
* :mod:`~repro.workload.faults` — fault-under-burst composition;
* :mod:`~repro.workload.fluid` — the cluster-scale fluid macroscope
  (10^5-tenant diurnal populations modelled analytically, anchored by
  hybrid fluid/discrete calibration probes — DESIGN.md §10).

Import direction: workload imports bench, never the reverse — the
driver only duck-types ``ArrivalProcess`` / ``KeySkew``.
"""

from repro.workload.arrival import (
    ArrivalProcess,
    ArrivalSampler,
    Composite,
    Constant,
    Diurnal,
    FlashCrowd,
    MMPP,
    Piecewise,
    Poisson,
    Ramp,
)
from repro.workload.faults import fault_at_peak
from repro.workload.fluid import (
    FluidScaleModel,
    ScaleCalibration,
    ScaleReport,
    ScaleSpec,
    TenantClass,
    calibrate_scale,
)
from repro.workload.skew import HotKeyChurn, KeyRouter, KeySkew, UniformSkew, ZipfSkew
from repro.workload.slo import (
    SloSpec,
    SloTracker,
    capacity_report,
    slo_margin,
    sustainable_verdict,
)
from repro.workload.tenants import (
    MultiTenantResult,
    TenantSpec,
    correlate_scale_events,
    run_tenants,
)

__all__ = [
    "ArrivalProcess",
    "ArrivalSampler",
    "Constant",
    "Poisson",
    "Ramp",
    "Diurnal",
    "MMPP",
    "FlashCrowd",
    "Piecewise",
    "Composite",
    "KeySkew",
    "KeyRouter",
    "UniformSkew",
    "ZipfSkew",
    "HotKeyChurn",
    "SloSpec",
    "SloTracker",
    "capacity_report",
    "slo_margin",
    "sustainable_verdict",
    "TenantSpec",
    "MultiTenantResult",
    "run_tenants",
    "correlate_scale_events",
    "fault_at_peak",
    "TenantClass",
    "ScaleSpec",
    "ScaleCalibration",
    "ScaleReport",
    "FluidScaleModel",
    "calibrate_scale",
]
