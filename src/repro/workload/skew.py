"""Key-skew models: how a tick's events spread over routing keys.

The driver's historical "random" key mode spreads each tick's event
group uniformly over the key table (``bench.runner._spread``).  Real
tenants are rarely uniform: web workloads follow Zipf-like popularity
curves, and operational hot spots move over time.  A :class:`KeySkew`
plugs into the same group-spreading point of the hot loop: given a
tick's event count it returns ``(key_index, share)`` pairs, where
``key_index`` selects an entry of the adapter's key table (one key per
initial partition/segment).

Skews are deterministic: a router is built per producer from the
workload seed via :func:`stable_hash64`, and share rounding uses
largest-remainder error diffusion so long-run frequencies converge to
the configured weights exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.common.hashing import stable_hash64

__all__ = ["KeySkew", "KeyRouter", "UniformSkew", "ZipfSkew", "HotKeyChurn"]


class KeyRouter:
    """Stateful per-producer share router."""

    def shares(self, count: int, now: float) -> List[Tuple[int, int]]:
        """Split ``count`` events into ``(key_index, share)`` pairs."""
        raise NotImplementedError  # pragma: no cover


class KeySkew:
    """A skew model; ``router(partitions, seed)`` builds the router."""

    def router(self, partitions: int, seed: int) -> KeyRouter:
        raise NotImplementedError  # pragma: no cover


class _WeightedRouter(KeyRouter):
    """Largest-remainder apportionment with per-key carry.

    Exact in the long run: each key's cumulative share tracks
    ``count * weight`` to within one event.
    """

    __slots__ = ("weights", "carry", "order")

    def __init__(self, weights: List[float]) -> None:
        total = sum(weights)
        self.weights = [w / total for w in weights]
        self.carry = [0.0] * len(weights)
        self.order = list(range(len(weights)))

    def _apportion(self, count: int) -> List[Tuple[int, int]]:
        weights, carry = self.weights, self.carry
        shares = []
        assigned = 0
        for i, w in enumerate(weights):
            exact = count * w + carry[i]
            n = int(exact)
            carry[i] = exact - n
            assigned += n
            if n:
                shares.append((i, n))
        leftover = count - assigned
        if leftover > 0:
            # Deterministic largest-remainder tie-break by key index.
            for i in sorted(self.order, key=lambda j: (-carry[j], j))[:leftover]:
                carry[i] -= 1.0
                shares.append((i, 1))
        return shares

    def shares(self, count: int, now: float) -> List[Tuple[int, int]]:
        return self._apportion(count)


@dataclass(frozen=True)
class UniformSkew(KeySkew):
    """Even spread — equivalent to the legacy "random" key mode."""

    def router(self, partitions: int, seed: int) -> KeyRouter:
        return _WeightedRouter([1.0] * partitions)


@dataclass(frozen=True)
class ZipfSkew(KeySkew):
    """Zipf(s) popularity: rank-r key receives weight 1/r^s.

    The rank -> key assignment is a seeded permutation so different
    producers (different seeds) can agree or disagree on the hot key via
    seed choice; by default each producer's router permutes with its own
    seed offset mixed in, keeping aggregate skew while avoiding a single
    synchronized hot key unless ``pinned`` is set.
    """

    s: float = 1.0
    #: pin the rank->key assignment (all producers share the hot key)
    pinned: bool = True

    def router(self, partitions: int, seed: int) -> KeyRouter:
        import random

        ranks = [1.0 / (r + 1) ** self.s for r in range(partitions)]
        perm = list(range(partitions))
        perm_seed = 0 if self.pinned else seed
        random.Random(stable_hash64(f"zipf:{perm_seed}")).shuffle(perm)
        weights = [0.0] * partitions
        for rank, key in enumerate(perm):
            weights[key] = ranks[rank]
        return _WeightedRouter(weights)


@dataclass(frozen=True)
class HotKeyChurn(KeySkew):
    """A moving hot set: ``hot_share`` of traffic concentrates on
    ``hot_count`` keys, re-drawn every ``churn_interval`` sim-seconds."""

    hot_share: float = 0.5
    hot_count: int = 1
    churn_interval: float = 10.0

    def router(self, partitions: int, seed: int) -> KeyRouter:
        return _ChurnRouter(self, partitions, seed)


class _ChurnRouter(KeyRouter):
    __slots__ = ("skew", "partitions", "rng", "next_churn", "inner")

    def __init__(self, skew: HotKeyChurn, partitions: int, seed: int) -> None:
        import random

        self.skew = skew
        self.partitions = partitions
        self.rng = random.Random(stable_hash64(f"churn:{seed}"))
        self.next_churn = 0.0
        self.inner: _WeightedRouter = None  # built on first shares()

    def _reroll(self) -> None:
        skew, partitions = self.skew, self.partitions
        hot_count = min(skew.hot_count, partitions)
        hot = set(self.rng.sample(range(partitions), hot_count))
        cold = partitions - hot_count
        weights = []
        for i in range(partitions):
            if i in hot:
                weights.append(skew.hot_share / hot_count)
            else:
                weights.append((1.0 - skew.hot_share) / max(cold, 1))
        self.inner = _WeightedRouter(weights)

    def shares(self, count: int, now: float) -> List[Tuple[int, int]]:
        if self.inner is None or now >= self.next_churn:
            self._reroll()
            interval = self.skew.churn_interval
            self.next_churn = (int(now / interval) + 1) * interval
        return self.inner.shares(count, now)
