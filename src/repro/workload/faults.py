"""Fault-under-burst composition: align fault injection with load peaks.

Availability numbers measured against flat load miss the interesting
regime — a broker crash *during* a flash crowd hits a system with no
headroom.  :func:`fault_at_peak` schedules any fault action at the
moment an arrival process peaks, so fault plans compose with traffic
patterns without hand-computing spike times.
"""

from __future__ import annotations

from repro.faults.plan import FaultPlan, FaultRule
from repro.workload.arrival import ArrivalProcess

__all__ = ["fault_at_peak"]


def fault_at_peak(
    plan: FaultPlan,
    arrival: ArrivalProcess,
    action: str,
    target: str,
    horizon: float,
    offset: float = 0.0,
    **kw,
) -> FaultPlan:
    """Add ``action`` on ``target`` timed to the pattern's peak.

    ``horizon`` bounds the peak search (the load length, in pattern
    time — the fault engine's clock starts with the load, so no epoch
    translation is needed).  ``offset`` shifts the trigger relative to
    the peak (negative = before).  Returns the plan for chaining.
    """
    at = max(0.0, arrival.peak_time(0.0, horizon) + offset)
    return plan.add(FaultRule(action, target, at=at, **kw))
