"""Multi-tenant composition: N tenants multiplexed through one run.

Each :class:`TenantSpec` bundles a traffic pattern (arrival process +
key skew), an event size, a stream sizing (partitions/producers/
consumers) and an :class:`~repro.workload.slo.SloSpec`.  ``run_tenants``
provisions one stream/topic per tenant on a shared cluster (via the
adapter's ``create_tenant``), starts one :class:`WorkloadEngine` per
tenant inside the *same* simulation, drives them to completion and
evaluates every tenant's SLO — the multi-tenant capacity question
(§2.2's "many small streams" regime) in one deterministic run.

``correlate_scale_events`` joins a Pravega controller's scale-event log
against a tenant's offered-load curve: did segment splits land while
the diurnal pattern was above its mean, and merges in the trough?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bench.results import BenchResult
from repro.bench.runner import WorkloadEngine, WorkloadSpec, _drive
from repro.sim.core import Simulator
from repro.workload.arrival import ArrivalProcess
from repro.workload.skew import KeySkew
from repro.workload.slo import SloSpec, SloTracker, capacity_report

__all__ = [
    "TenantSpec",
    "MultiTenantResult",
    "run_tenants",
    "correlate_scale_events",
]


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's workload contract."""

    name: str
    #: time-varying rate function; None falls back to ``target_rate``
    arrival: Optional[ArrivalProcess] = None
    target_rate: float = 10_000.0
    event_size: int = 100
    partitions: int = 1
    producers: int = 1
    consumers: int = 0
    key_mode: str = "random"
    key_skew: Optional[KeySkew] = None
    slo: SloSpec = field(default_factory=SloSpec)
    #: Pravega scaling policy for this tenant's stream (ignored by the
    #: fixed-partition adapters)
    scaling: Optional[object] = None
    seed: int = 0
    #: hybrid fluid/discrete mode for this tenant (repro.sim.fluid.FluidSpec)
    fluid: Optional[object] = None

    def workload_spec(
        self, duration: float, warmup: float, tick: float, bench_hosts: int
    ) -> WorkloadSpec:
        return WorkloadSpec(
            event_size=self.event_size,
            target_rate=self.target_rate,
            partitions=self.partitions,
            producers=self.producers,
            consumers=self.consumers,
            key_mode=self.key_mode,
            duration=duration,
            warmup=warmup,
            tick=tick,
            bench_hosts=bench_hosts,
            arrival=self.arrival,
            key_skew=self.key_skew,
            seed=self.seed,
            fluid=self.fluid,
        )


@dataclass
class MultiTenantResult:
    """Everything one multi-tenant run measured."""

    results: Dict[str, BenchResult]
    slo: Dict[str, Dict[str, float]]
    capacity: Dict[str, Dict[str, float]]
    #: sim time when load generation started (scale-event correlation
    #: uses this to translate absolute event times to pattern time)
    epoch: float
    #: False when the run hit its load timeout (overload; the window's
    #: measurements are still valid)
    completed: bool = True


def run_tenants(
    sim: Simulator,
    adapter,
    tenants: Sequence[TenantSpec],
    duration: float = 10.0,
    warmup: float = 1.0,
    tick: float = 0.005,
    bench_hosts: int = 2,
    series_interval: Optional[float] = 0.5,
    fault_engine=None,
) -> MultiTenantResult:
    """Run every tenant concurrently against one shared cluster."""
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate tenant names: {names}")
    clients = {
        t.name: adapter.create_tenant(t.name, t.partitions, scaling=t.scaling)
        for t in tenants
    }
    if fault_engine is not None:
        fault_engine.start()
    epoch = sim.now
    engines: List[WorkloadEngine] = []
    trackers: Dict[str, SloTracker] = {}
    for tenant in tenants:
        spec = tenant.workload_spec(duration, warmup, tick, bench_hosts)
        tracker = SloTracker(
            tenant.slo, epoch + warmup, epoch + warmup + duration
        )
        engine = WorkloadEngine(
            sim,
            clients[tenant.name],
            spec,
            observer=tracker,
            label=f"{getattr(adapter, 'name', 'bench')}/{tenant.name}",
            series_interval=series_interval,
            fault_engine=fault_engine,
        )
        engine.start()
        trackers[tenant.name] = tracker
        engines.append(engine)
    completed = _drive(sim, engines)
    if fault_engine is not None:
        fault_engine.quiesce()
    results: Dict[str, BenchResult] = {}
    reports: Dict[str, Dict[str, float]] = {}
    for tenant, engine in zip(tenants, engines):
        result = engine.finalize()
        trackers[tenant.name].emit(result.extra)
        results[tenant.name] = result
        reports[tenant.name] = trackers[tenant.name].report()
    return MultiTenantResult(
        results=results,
        slo=reports,
        capacity=capacity_report(reports),
        epoch=epoch,
        completed=completed,
    )


def correlate_scale_events(
    scale_events,
    arrival: ArrivalProcess,
    epoch: float,
    horizon: float,
    stream: Optional[str] = None,
) -> Dict[str, object]:
    """Join controller scale events with the offered-load curve.

    ``scale_events`` is ``Controller.scale_events`` (``(time, "scope/
    stream", kind, details)`` tuples); ``epoch`` is when load started
    (``MultiTenantResult.epoch``) and ``horizon`` the load length.  Each
    event is annotated with the pattern's offered rate at that moment
    and classified against the pattern's mean: an elastic store should
    split above the mean and merge below it.
    """
    mean = arrival.mean_rate(0.0, horizon)
    events: List[Dict[str, object]] = []
    ups = downs = ups_above = downs_below = 0
    for when, name, kind, details in scale_events:
        if stream is not None and stream not in name:
            continue
        rel = min(max(when - epoch, 0.0), horizon)
        offered = arrival.rate(rel)
        events.append(
            {
                "time": round(when, 6),
                "pattern_time": round(rel, 6),
                "kind": kind,
                "offered_eps": round(offered, 3),
                "details": details,
            }
        )
        if kind == "scale-up":
            ups += 1
            if offered >= mean:
                ups_above += 1
        elif kind == "scale-down":
            downs += 1
            if offered < mean:
                downs_below += 1
    return {
        "scale_up": ups,
        "scale_down": downs,
        "scale_up_above_mean": ups_above,
        "scale_down_below_mean": downs_below,
        "mean_offered_eps": round(mean, 3),
        "events": events,
    }
