"""Shared utilities: hashing, key-space algebra, AVL tree, metrics, errors."""

from repro.common.avl import AvlTree
from repro.common.hashing import assign_to_bucket, routing_key_position, stable_hash64
from repro.common.keyspace import KeyRange, is_partition, merge_ranges, split_range
from repro.common.metrics import (
    Counter,
    LatencyHistogram,
    MetricsRegistry,
    RateMeter,
    TimeSeries,
    percentile,
)

__all__ = [
    "AvlTree",
    "stable_hash64",
    "routing_key_position",
    "assign_to_bucket",
    "KeyRange",
    "split_range",
    "merge_ranges",
    "is_partition",
    "Counter",
    "RateMeter",
    "LatencyHistogram",
    "TimeSeries",
    "MetricsRegistry",
    "percentile",
]
