"""A self-balancing AVL search tree.

The Pravega read index uses "a sorted index of entries per segment
(indexed by their start offsets) ... implemented via a custom AVL search
tree to minimize memory usage while not sacrificing access performance"
(§4.2, ref [29]).  This implementation supports exact search plus the
*floor* query the read index needs: "the greatest entry whose start
offset is <= the requested offset".
"""

from __future__ import annotations

from typing import Any, Generic, Iterator, Optional, Tuple, TypeVar

K = TypeVar("K")
V = TypeVar("V")

__all__ = ["AvlTree"]


class _Node(Generic[K, V]):
    __slots__ = ("key", "value", "left", "right", "height")

    def __init__(self, key: K, value: V) -> None:
        self.key = key
        self.value = value
        self.left: Optional["_Node[K, V]"] = None
        self.right: Optional["_Node[K, V]"] = None
        self.height = 1


def _height(node: Optional[_Node]) -> int:
    return node.height if node is not None else 0


def _update(node: _Node) -> None:
    node.height = 1 + max(_height(node.left), _height(node.right))


def _balance_factor(node: _Node) -> int:
    return _height(node.left) - _height(node.right)


def _rotate_right(y: _Node) -> _Node:
    x = y.left
    assert x is not None
    y.left = x.right
    x.right = y
    _update(y)
    _update(x)
    return x


def _rotate_left(x: _Node) -> _Node:
    y = x.right
    assert y is not None
    x.right = y.left
    y.left = x
    _update(x)
    _update(y)
    return y


def _rebalance(node: _Node) -> _Node:
    _update(node)
    balance = _balance_factor(node)
    if balance > 1:
        assert node.left is not None
        if _balance_factor(node.left) < 0:
            node.left = _rotate_left(node.left)
        return _rotate_right(node)
    if balance < -1:
        assert node.right is not None
        if _balance_factor(node.right) > 0:
            node.right = _rotate_right(node.right)
        return _rotate_left(node)
    return node


class AvlTree(Generic[K, V]):
    """An ordered map with O(log n) insert/delete/search/floor/ceiling."""

    def __init__(self) -> None:
        self._root: Optional[_Node[K, V]] = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: K) -> bool:
        return self._find(key) is not None

    def __iter__(self) -> Iterator[K]:
        for key, _ in self.items():
            yield key

    # ------------------------------------------------------------------
    def insert(self, key: K, value: V) -> None:
        """Insert ``key`` -> ``value``; replaces the value if key exists."""
        inserted = [False]

        def _insert(node: Optional[_Node[K, V]]) -> _Node[K, V]:
            if node is None:
                inserted[0] = True
                return _Node(key, value)
            if key < node.key:
                node.left = _insert(node.left)
            elif key > node.key:
                node.right = _insert(node.right)
            else:
                node.value = value
                return node
            return _rebalance(node)

        self._root = _insert(self._root)
        if inserted[0]:
            self._size += 1

    def delete(self, key: K) -> bool:
        """Remove ``key``; returns True if it was present."""
        removed = [False]

        def _min_node(node: _Node[K, V]) -> _Node[K, V]:
            while node.left is not None:
                node = node.left
            return node

        def _delete(node: Optional[_Node[K, V]], key: K) -> Optional[_Node[K, V]]:
            if node is None:
                return None
            if key < node.key:
                node.left = _delete(node.left, key)
            elif key > node.key:
                node.right = _delete(node.right, key)
            else:
                removed[0] = True
                if node.left is None:
                    return node.right
                if node.right is None:
                    return node.left
                successor = _min_node(node.right)
                node.key = successor.key
                node.value = successor.value
                removed[0] = False
                node.right = _delete(node.right, successor.key)
                removed[0] = True
            return _rebalance(node)

        self._root = _delete(self._root, key)
        if removed[0]:
            self._size -= 1
        return removed[0]

    def get(self, key: K, default: Any = None) -> Any:
        node = self._find(key)
        return node.value if node is not None else default

    def _find(self, key: K) -> Optional[_Node[K, V]]:
        node = self._root
        while node is not None:
            if key < node.key:
                node = node.left
            elif key > node.key:
                node = node.right
            else:
                return node
        return None

    # ------------------------------------------------------------------
    def floor(self, key: K) -> Optional[Tuple[K, V]]:
        """Greatest (key', value) with key' <= key, or None."""
        node = self._root
        best: Optional[_Node[K, V]] = None
        while node is not None:
            if node.key == key:
                return (node.key, node.value)
            if node.key < key:
                best = node
                node = node.right
            else:
                node = node.left
        return (best.key, best.value) if best is not None else None

    def ceiling(self, key: K) -> Optional[Tuple[K, V]]:
        """Smallest (key', value) with key' >= key, or None."""
        node = self._root
        best: Optional[_Node[K, V]] = None
        while node is not None:
            if node.key == key:
                return (node.key, node.value)
            if node.key > key:
                best = node
                node = node.left
            else:
                node = node.right
        return (best.key, best.value) if best is not None else None

    def min_item(self) -> Optional[Tuple[K, V]]:
        node = self._root
        if node is None:
            return None
        while node.left is not None:
            node = node.left
        return (node.key, node.value)

    def max_item(self) -> Optional[Tuple[K, V]]:
        node = self._root
        if node is None:
            return None
        while node.right is not None:
            node = node.right
        return (node.key, node.value)

    def items(self) -> Iterator[Tuple[K, V]]:
        """In-order traversal (ascending keys), iterative to bound stack use."""
        stack: list[_Node[K, V]] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield (node.key, node.value)
            node = node.right

    def items_from(self, key: K) -> Iterator[Tuple[K, V]]:
        """In-order traversal of all entries with key >= ``key``."""
        stack: list[_Node[K, V]] = []
        node = self._root
        while node is not None:
            if node.key >= key:
                stack.append(node)
                node = node.left
            else:
                node = node.right
        while stack:
            node = stack.pop()
            yield (node.key, node.value)
            node = node.right
            while node is not None:
                stack.append(node)
                node = node.left

    def height(self) -> int:
        return _height(self._root)

    def check_invariants(self) -> None:
        """Assert AVL balance and BST ordering (used by property tests)."""

        def _check(node: Optional[_Node[K, V]]) -> int:
            if node is None:
                return 0
            left = _check(node.left)
            right = _check(node.right)
            assert abs(left - right) <= 1, "AVL balance violated"
            assert node.height == 1 + max(left, right), "stale height"
            if node.left is not None:
                assert node.left.key < node.key, "BST order violated"
            if node.right is not None:
                assert node.right.key > node.key, "BST order violated"
            return node.height

        _check(self._root)
