"""Measurement utilities: counters, rate meters, latency histograms and
time series.

The benchmark harness reports the same statistics as OpenMessaging
Benchmark (p50/p95/p99 latency, throughput in events/s and bytes/s), and
Fig. 13 additionally needs time-series probes (per-segment-store write
load, segment counts, p50 latency over time), which the paper generated
from Pravega's metrics exports.
"""

from __future__ import annotations

import math
from bisect import bisect_right, insort
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "RateMeter",
    "LatencyHistogram",
    "TimeSeries",
    "MetricsRegistry",
    "percentile",
]


def percentile(sorted_values: List[float], fraction: float) -> float:
    """Linear-interpolation percentile of an already-sorted list."""
    if not sorted_values:
        return float("nan")
    if fraction <= 0:
        return sorted_values[0]
    if fraction >= 1:
        return sorted_values[-1]
    rank = fraction * (len(sorted_values) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return sorted_values[low]
    weight = rank - low
    return sorted_values[low] * (1 - weight) + sorted_values[high] * weight


class Counter:
    """A monotonically increasing counter."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        self.value += amount


class RateMeter:
    """Tracks an exponentially-weighted rate of events/bytes per second.

    Pravega's data plane uses per-segment rate trackers to feed the
    auto-scaling policy (two-minute / ten-minute style windows in the real
    system); we expose the same shape with a configurable half-life.
    """

    def __init__(self, half_life: float = 10.0) -> None:
        self.half_life = half_life
        self._rate = 0.0
        self._last_time: Optional[float] = None

    @property
    def rate(self) -> float:
        return self._rate

    def record(self, now: float, amount: float) -> None:
        if self._last_time is None:
            self._last_time = now
            self._rate = 0.0
        # Out-of-order samples (now < _last_time) are clamped onto the
        # same-instant path; rewinding the meter's clock would make the
        # next sample's elapsed span the rewound gap twice.
        elapsed = max(now - self._last_time, 0.0)
        if elapsed == 0.0:
            # Same-instant samples accumulate into the current estimate via
            # a small nominal interval to avoid division by zero.
            elapsed = 1e-6
        instantaneous = amount / elapsed
        alpha = 1.0 - math.exp(-elapsed * math.log(2.0) / self.half_life)
        self._rate += alpha * (instantaneous - self._rate)
        self._last_time = max(self._last_time, now)

    def decay_to(self, now: float) -> float:
        """Rate estimate at ``now`` assuming no events since the last record."""
        if self._last_time is None:
            return 0.0
        elapsed = max(now - self._last_time, 0.0)
        decay = math.exp(-elapsed * math.log(2.0) / self.half_life)
        return self._rate * decay


class LatencyHistogram:
    """Latency recorder with exact percentiles.

    Samples are kept sorted; memory is bounded by reservoir sampling once
    ``max_samples`` is exceeded (uniform reservoir, deterministic stride).
    """

    def __init__(self, name: str = "", max_samples: int = 200_000) -> None:
        self.name = name
        self.max_samples = max_samples
        self._sorted: List[float] = []
        self.count = 0
        self.total = 0.0
        self._stride = 1
        self._phase = 0
        self._max = float("-inf")

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        # Track the max exactly: reservoir halving keeps even indices only,
        # so the largest sample (and with it the reported max) could
        # silently shrink once the stride starts skipping records.
        if value > self._max:
            self._max = value
        self._phase += 1
        if self._phase < self._stride:
            return
        self._phase = 0
        insort(self._sorted, value)
        if len(self._sorted) > self.max_samples:
            # Halve the reservoir deterministically and double the stride.
            self._sorted = self._sorted[::2]
            self._stride *= 2

    def record_bulk(self, sorted_values: List[float], count: int, shift: float = 0.0) -> None:
        """Record ``count`` samples drawn from an empirical distribution.

        ``sorted_values`` is a (small, sorted) calibration sample; the bulk
        is folded in by quantile resampling — for each reservoir slot the
        stride earns, insert the interpolated quantile plus ``shift``.  The
        fluid controller uses this to account a whole analytic span's worth
        of latencies in O(slots) instead of O(count) events, while keeping
        ``count``/``total``/``max`` semantics exact.
        """
        if count <= 0 or not sorted_values:
            return
        self.count += count
        mean = sum(sorted_values) / len(sorted_values) + shift
        self.total += mean * count
        top = sorted_values[-1] + shift
        if top > self._max:
            self._max = top
        # Grow the stride up front so this bulk contributes a bounded
        # number of inserts (~512), mirroring what per-event halving would
        # converge to for the same total count.
        while (self.count // self._stride) > self.max_samples:
            self._sorted = self._sorted[::2]
            self._stride *= 2
        inserts, self._phase = divmod(self._phase + count, self._stride)
        while inserts > 512:
            # Bound worst-case work for enormous spans; the reservoir
            # stays a uniform sample either way.
            self._sorted = self._sorted[::2]
            self._stride *= 2
            inserts, self._phase = divmod(self._phase + inserts * (self._stride // 2), self._stride)
        for i in range(inserts):
            insort(self._sorted, percentile(sorted_values, (i + 0.5) / inserts) + shift)
            if len(self._sorted) > self.max_samples:
                self._sorted = self._sorted[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def quantile(self, fraction: float) -> float:
        return percentile(self._sorted, fraction)

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def max(self) -> float:
        return self._max if self.count else float("nan")

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }


@dataclass
class TimeSeries:
    """An append-only series of (time, value) samples."""

    name: str = ""
    samples: List[Tuple[float, float]] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        self.samples.append((time, value))

    def values(self) -> List[float]:
        return [v for _, v in self.samples]

    def at(self, time: float) -> float:
        """Most recent value at or before ``time`` (steps interpolation)."""
        if not self.samples:
            return float("nan")
        index = bisect_right(self.samples, (time, float("inf"))) - 1
        if index < 0:
            return float("nan")
        return self.samples[index][1]

    def window_mean(self, start: float, end: float) -> float:
        values = [v for t, v in self.samples if start <= t <= end]
        return sum(values) / len(values) if values else float("nan")


class MetricsRegistry:
    """A flat namespace of metrics, one per component instance."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}
        self._series: Dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def histogram(self, name: str) -> LatencyHistogram:
        if name not in self._histograms:
            self._histograms[name] = LatencyHistogram(name)
        return self._histograms[name]

    def series(self, name: str) -> TimeSeries:
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def counters(self) -> Dict[str, float]:
        return {name: c.value for name, c in self._counters.items()}

    def names(self) -> Iterable[str]:
        yield from self._counters
        yield from self._histograms
        yield from self._series
