"""Key-space algebra for stream scaling.

A stream's segments partition the routing-key space [0, 1) (§2.1).  A
scale-up event seals one segment and replaces it with successors whose
ranges exactly partition the sealed range; a scale-down merges adjacent
sealed ranges into one successor (§3.1, Fig. 2a).  This module implements
the range arithmetic and the partition invariant checks that the
controller relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["KeyRange", "split_range", "merge_ranges", "is_partition"]

_EPS = 1e-12


@dataclass(frozen=True, order=True)
class KeyRange:
    """Half-open interval [low, high) within the key space [0, 1)."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.low < self.high <= 1.0):
            raise ValueError(f"invalid key range [{self.low}, {self.high})")

    def contains(self, position: float) -> bool:
        return self.low <= position < self.high

    def overlaps(self, other: "KeyRange") -> bool:
        return self.low < other.high and other.low < self.high

    def adjacent_to(self, other: "KeyRange") -> bool:
        return abs(self.high - other.low) < _EPS or abs(other.high - self.low) < _EPS

    @property
    def width(self) -> float:
        return self.high - self.low

    @classmethod
    def full(cls) -> "KeyRange":
        return cls(0.0, 1.0)


def split_range(key_range: KeyRange, parts: int) -> list[KeyRange]:
    """Split ``key_range`` into ``parts`` equal sub-ranges (scale-up)."""
    if parts < 2:
        raise ValueError(f"split requires at least 2 parts, got {parts}")
    width = key_range.width / parts
    bounds = [key_range.low + i * width for i in range(parts)] + [key_range.high]
    return [KeyRange(bounds[i], bounds[i + 1]) for i in range(parts)]


def merge_ranges(ranges: Sequence[KeyRange]) -> KeyRange:
    """Merge contiguous ranges into one (scale-down).

    Raises ``ValueError`` if the ranges do not form a contiguous,
    non-overlapping run.
    """
    if not ranges:
        raise ValueError("cannot merge zero ranges")
    ordered = sorted(ranges)
    for left, right in zip(ordered, ordered[1:]):
        if abs(left.high - right.low) > _EPS:
            raise ValueError(
                f"ranges not contiguous: [{left.low},{left.high}) then "
                f"[{right.low},{right.high})"
            )
    return KeyRange(ordered[0].low, ordered[-1].high)


def is_partition(ranges: Iterable[KeyRange], of: KeyRange | None = None) -> bool:
    """True iff ``ranges`` exactly partition ``of`` (default: the full space)."""
    target = of or KeyRange.full()
    ordered = sorted(ranges)
    if not ordered:
        return False
    if abs(ordered[0].low - target.low) > _EPS:
        return False
    if abs(ordered[-1].high - target.high) > _EPS:
        return False
    for left, right in zip(ordered, ordered[1:]):
        if abs(left.high - right.low) > _EPS:
            return False
    return True
