"""Payload: bytes that may be real or synthetic.

Correctness tests exercise the data path with real byte content and verify
exact round trips.  Benchmarks move tens of gigabytes of simulated data;
allocating those bytes for real would be pointless, so a payload may carry
only its *size*.  Every component of the storage path (WAL frames, cache
blocks, LTS chunks, read responses) operates on :class:`Payload` and
therefore works identically in both modes; sizes always add up exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

__all__ = ["Payload"]


@dataclass(frozen=True)
class Payload:
    """An immutable run of bytes, possibly content-free (synthetic)."""

    size: int
    content: Optional[bytes] = None

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"negative payload size: {self.size}")
        if self.content is not None and len(self.content) != self.size:
            raise ValueError(
                f"content length {len(self.content)} != declared size {self.size}"
            )

    @classmethod
    def _trusted(cls, size: int, content: Optional[bytes]) -> "Payload":
        """Construct without validation — callers guarantee the size/content
        invariant.  Frozen-dataclass ``__init__`` pays one
        ``object.__setattr__`` per field plus ``__post_init__``; the storage
        path builds millions of payloads, so internal call sites skip it.
        """
        payload = object.__new__(cls)
        _set = object.__setattr__
        _set(payload, "size", size)
        _set(payload, "content", content)
        return payload

    @classmethod
    def of(cls, data: bytes) -> "Payload":
        """A payload with real content."""
        return cls._trusted(len(data), bytes(data))

    @classmethod
    def synthetic(cls, size: int) -> "Payload":
        """A content-free payload of ``size`` bytes."""
        if size < 0:
            raise ValueError(f"negative payload size: {size}")
        return cls._trusted(size, None)

    @classmethod
    def empty(cls) -> "Payload":
        return _EMPTY

    @property
    def is_synthetic(self) -> bool:
        return self.content is None and self.size > 0

    def slice(self, start: int, end: int) -> "Payload":
        """The sub-payload [start, end) — content-preserving when possible."""
        if not (0 <= start <= end <= self.size):
            raise ValueError(f"bad slice [{start}, {end}) of {self.size} bytes")
        if self.content is not None:
            return Payload._trusted(end - start, self.content[start:end])
        return Payload._trusted(end - start, None)

    @classmethod
    def concat(cls, parts: Sequence["Payload"]) -> "Payload":
        """Concatenate payloads; the result is synthetic if any part is."""
        total = 0
        all_content = True
        for p in parts:
            total += p.size
            if p.content is None:
                all_content = False
        if total == 0:
            return _EMPTY
        if all_content:
            return cls._trusted(total, b"".join(p.content for p in parts))  # type: ignore[misc]
        return cls._trusted(total, None)

    def __add__(self, other: "Payload") -> "Payload":
        return Payload.concat([self, other])

    def require_content(self) -> bytes:
        if self.content is None:
            raise ValueError("payload is synthetic (size-only)")
        return self.content


#: shared immutable empty payload (Payload is frozen, so a singleton is safe)
_EMPTY = Payload(0, b"")
