"""Payload: bytes that may be real or synthetic.

Correctness tests exercise the data path with real byte content and verify
exact round trips.  Benchmarks move tens of gigabytes of simulated data;
allocating those bytes for real would be pointless, so a payload may carry
only its *size*.  Every component of the storage path (WAL frames, cache
blocks, LTS chunks, read responses) operates on :class:`Payload` and
therefore works identically in both modes; sizes always add up exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

__all__ = ["Payload"]


@dataclass(frozen=True)
class Payload:
    """An immutable run of bytes, possibly content-free (synthetic)."""

    size: int
    content: Optional[bytes] = None

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"negative payload size: {self.size}")
        if self.content is not None and len(self.content) != self.size:
            raise ValueError(
                f"content length {len(self.content)} != declared size {self.size}"
            )

    @classmethod
    def of(cls, data: bytes) -> "Payload":
        """A payload with real content."""
        return cls(len(data), bytes(data))

    @classmethod
    def synthetic(cls, size: int) -> "Payload":
        """A content-free payload of ``size`` bytes."""
        return cls(size, None)

    @classmethod
    def empty(cls) -> "Payload":
        return cls(0, b"")

    @property
    def is_synthetic(self) -> bool:
        return self.content is None and self.size > 0

    def slice(self, start: int, end: int) -> "Payload":
        """The sub-payload [start, end) — content-preserving when possible."""
        if not (0 <= start <= end <= self.size):
            raise ValueError(f"bad slice [{start}, {end}) of {self.size} bytes")
        if self.content is not None:
            return Payload(end - start, self.content[start:end])
        return Payload.synthetic(end - start)

    @classmethod
    def concat(cls, parts: Sequence["Payload"]) -> "Payload":
        """Concatenate payloads; the result is synthetic if any part is."""
        total = sum(p.size for p in parts)
        if total == 0:
            return cls.empty()
        if all(p.content is not None for p in parts):
            return cls(total, b"".join(p.content for p in parts))  # type: ignore[misc]
        return cls.synthetic(total)

    def __add__(self, other: "Payload") -> "Payload":
        return Payload.concat([self, other])

    def require_content(self) -> bytes:
        if self.content is None:
            raise ValueError("payload is synthetic (size-only)")
        return self.content
