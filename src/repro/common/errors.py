"""Exception hierarchy shared across the reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can distinguish faults of the system under test from programming
errors in the harness itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly."""


class CoordinationError(ReproError):
    """Base class for coordination-service (zookeeper) errors."""


class NoNodeError(CoordinationError):
    """The requested znode does not exist."""


class NodeExistsError(CoordinationError):
    """A znode already exists at the requested path."""


class BadVersionError(CoordinationError):
    """A compare-and-set failed because the version did not match."""


class SessionExpiredError(CoordinationError):
    """The client session has expired; ephemeral nodes were removed."""


class BookkeeperError(ReproError):
    """Base class for write-ahead-log (bookkeeper) errors."""


class LedgerFencedError(BookkeeperError):
    """An append was rejected because the ledger has been fenced."""


class LedgerClosedError(BookkeeperError):
    """An append was attempted on a closed ledger."""


class NoSuchLedgerError(BookkeeperError):
    """The requested ledger does not exist (e.g. already deleted)."""


class NotEnoughBookiesError(BookkeeperError):
    """An ensemble could not be formed from the available bookies."""


class StorageError(ReproError):
    """Base class for long-term-storage errors."""


class NoSuchChunkError(StorageError):
    """The requested LTS chunk/object/file does not exist."""


class StreamError(ReproError):
    """Base class for stream/controller errors."""


class StreamNotFoundError(StreamError):
    """The requested stream does not exist."""


class StreamExistsError(StreamError):
    """A stream already exists with the requested name."""


class StreamSealedError(StreamError):
    """The operation is not permitted on a sealed stream."""


class SegmentError(ReproError):
    """Base class for segment-level errors."""


class SegmentNotFoundError(SegmentError):
    """The requested segment does not exist (deleted or never created)."""


class SegmentSealedError(SegmentError):
    """An append/seal-sensitive operation hit a sealed segment."""


class SegmentExistsError(SegmentError):
    """A segment already exists with the requested id."""


class ContainerError(ReproError):
    """Base class for segment-container faults."""


class ContainerFencedError(ContainerError):
    """The container lost ownership (another instance fenced it out)."""


class ContainerOfflineError(ContainerError):
    """The container is shut down or recovering."""


class ConditionalUpdateError(ReproError):
    """A conditional key-value-table update failed (version mismatch)."""


class TransactionFailedError(ConditionalUpdateError):
    """A multi-key table transaction aborted."""


class WriterError(ReproError):
    """Base class for event-writer errors."""


class ReaderError(ReproError):
    """Base class for event-reader errors."""


class ReaderGroupError(ReaderError):
    """Reader-group coordination failed."""


class KafkaError(ReproError):
    """Base class for the Kafka baseline."""


class NotEnoughReplicasError(KafkaError):
    """acks=all could not be satisfied by the in-sync replica set."""


class PulsarError(ReproError):
    """Base class for the Pulsar baseline."""


class BrokerCrashedError(PulsarError):
    """The broker crashed (memory-pressure model) during the operation."""


class BackpressureError(ReproError):
    """Ingestion was throttled and the caller chose not to wait."""


class FaultInjectionError(ReproError):
    """Base class for failures injected by the fault engine (repro.faults)."""


class DiskFaultError(FaultInjectionError):
    """An injected disk failure: the I/O completes with a device error."""


class InjectedCrashError(FaultInjectionError):
    """An injected process crash fired inside a code path (e.g. recovery)."""
