"""Stable hashing utilities.

Pravega maps routing keys to positions in the key space [0, 1) and maps
segments to segment containers with a stateless uniform hash (§2.2, §5.8).
Python's built-in ``hash`` is salted per process, so we use BLAKE2b for a
hash that is stable across runs — experiments must be reproducible.
"""

from __future__ import annotations

import hashlib
import struct

__all__ = ["stable_hash64", "routing_key_position", "assign_to_bucket"]

_MAX_U64 = 2**64


def stable_hash64(value: str | bytes) -> int:
    """A deterministic 64-bit hash of ``value`` (uniform over [0, 2^64))."""
    if isinstance(value, str):
        value = value.encode("utf-8")
    digest = hashlib.blake2b(value, digest_size=8).digest()
    return struct.unpack(">Q", digest)[0]


def routing_key_position(routing_key: str) -> float:
    """Map a routing key to its position h(k) in [0, 1) (§2.1)."""
    return stable_hash64(routing_key) / _MAX_U64


def assign_to_bucket(key: str | bytes, num_buckets: int) -> int:
    """Stateless uniform assignment of ``key`` to one of ``num_buckets``.

    Used to map segments to segment containers: the mapping is a pure
    function of the segment id and the (fixed) container count, so every
    component of the system can compute it without coordination (§2.2).
    """
    if num_buckets <= 0:
        raise ValueError(f"num_buckets must be positive, got {num_buckets}")
    return stable_hash64(key) % num_buckets
