"""The workload driver (OpenMessaging-Benchmark-like, §5.1).

Open-loop producers generate events at a target rate, spread over the
topic's partitions according to the key mode ("random" routing keys by
default, as in the paper; "none" disables keys).  Consumers read
concurrently; end-to-end latency is matched through per-partition FIFO
trackers of send timestamps.  Events are generated in per-tick groups
(each group travels the real client/batching/replication path) so
million-events-per-second workloads stay tractable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.common.errors import ReproError
from repro.sim.core import Interrupt, SimFuture, Simulator
from repro.bench.results import BenchResult

__all__ = ["WorkloadSpec", "run_workload"]

GLOBAL_TRACKER = -1


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark configuration (the OMB workload grammar)."""

    event_size: int = 100
    #: offered load in events/second across all producers
    target_rate: float = 10_000.0
    partitions: int = 1
    producers: int = 1
    consumers: int = 0
    #: "random" = random routing keys (paper default); "none" = no keys
    key_mode: str = "random"
    #: measured interval (after warmup)
    duration: float = 5.0
    warmup: float = 1.0
    #: load-generation granularity
    tick: float = 0.005
    #: benchmark-driver host count (Table 1: 2; §5.6 uses 10)
    bench_hosts: int = 2
    #: consumers keep draining after producers stop until they catch up
    drain: bool = False
    #: cap on drain time (simulated seconds)
    drain_timeout: float = 300.0


@dataclass
class _Counters:
    sent_events: int = 0
    produced_events: int = 0
    produced_window: int = 0
    consumed_events: int = 0
    consumed_window: int = 0
    consumed_bytes_window: int = 0
    errors: int = 0


def run_workload(
    sim: Simulator,
    adapter,
    spec: WorkloadSpec,
    probe: Optional[Callable[[float, BenchResult], None]] = None,
    probe_interval: float = 1.0,
    fault_engine=None,
    tracer=None,
) -> BenchResult:
    """Run one workload to completion and return its measurements.

    With ``fault_engine`` (a started-or-not :class:`repro.faults.FaultEngine`
    already wired into the system under test) the engine's schedule starts
    when load starts, and the injected-fault counts land in
    ``result.extra`` — fault-aware benchmarking.

    With ``tracer`` (a :class:`repro.obs.Tracer` already wired into the
    adapter) the measurement window bounds and span counts land in
    ``result.extra`` so the critical-path analyzer can restrict itself to
    in-window events.
    """
    result = BenchResult(
        label=f"{adapter.name} p={spec.partitions} w={spec.producers}",
        target_rate=spec.target_rate,
    )
    counters = _Counters()
    adapter.setup(spec.partitions)
    if fault_engine is not None:
        fault_engine.start()
    if hasattr(adapter, "total_consumers"):
        adapter.total_consumers = max(spec.consumers, 1)

    window_start = sim.now + spec.warmup
    window_end = sim.now + spec.warmup + spec.duration
    load_end = window_end
    ack_grace = 0.25
    #: per-partition FIFO of (event count, send time); all deques are
    #: created up front so the per-tick hot loop never allocates one
    trackers: Dict[int, Deque[Tuple[int, float]]] = {
        partition: deque() for partition in range(spec.partitions)
    }
    trackers[GLOBAL_TRACKER] = deque()
    producers_done = sim.future()
    producers_running = [spec.producers]

    # ------------------------------------------------------------------
    # Producers
    # ------------------------------------------------------------------
    def producer_process(index: int):
        handle = adapter.new_producer(f"bench-{index % spec.bench_hosts}")
        rate = spec.target_rate / spec.producers
        carry = 0.0
        rotate = index
        # Hot-loop hoists: one attribute lookup each per run, not per tick.
        tick = spec.tick
        event_size = spec.event_size
        partitions = spec.partitions
        keyless = spec.key_mode == "none"
        backlog_cap = spec.target_rate * 2.0 + 10_000
        send_group = handle.send_group
        while sim.now < load_end:
            yield tick
            # Open-loop generation, bounded: once the system is hopelessly
            # behind (several seconds of unacked events), stop piling more
            # into client queues — the run is already saturated, and this
            # keeps overload runs tractable.
            backlog = counters.sent_events - counters.produced_events
            if backlog > backlog_cap:
                continue
            carry += rate * tick
            count = int(carry)
            if count <= 0:
                continue
            carry -= count
            counters.sent_events += count
            now = sim.now
            in_window = window_start <= now < window_end
            if keyless:
                fut = send_group(None, count, event_size)
                fut.add_callback(
                    lambda f, n=count, t=now, w=in_window: _ack(f, n, t, w)
                )
                trackers[GLOBAL_TRACKER].append((count, now))
            else:
                # Random keys: spread the group across partitions.
                shares = _spread(count, partitions, rotate)
                rotate += 1
                for partition, share in shares:
                    fut = send_group(partition, share, event_size)
                    fut.add_callback(
                        lambda f, n=share, t=now, w=in_window: _ack(f, n, t, w)
                    )
                    trackers[partition].append((share, now))
        yield handle.flush()
        producers_running[0] -= 1
        if producers_running[0] == 0 and not producers_done.done:
            producers_done.set_result(None)

    def _ack(fut: SimFuture, n: int, send_time: float, in_window: bool) -> None:
        if fut.exception is not None:
            counters.errors += 1
            return
        counters.produced_events += n
        # An ack counts toward the measured rate only if the *ack* also
        # lands near the window: a system whose latency has run away is
        # not sustaining the offered rate.
        if in_window and sim.now <= window_end + ack_grace:
            counters.produced_window += n
            result.write_latency.record(sim.now - send_time)

    # ------------------------------------------------------------------
    # Consumers
    # ------------------------------------------------------------------
    def consumer_process(index: int):
        handle = adapter.new_consumer(
            f"bench-{index % spec.bench_hosts}", index, spec.event_size
        )
        tracker_key = GLOBAL_TRACKER if spec.key_mode == "none" else None
        while True:
            try:
                partition, count, nbytes = yield handle.receive()
            except Interrupt:
                return
            except Exception:  # noqa: BLE001 - crashed broker etc.
                counters.errors += 1
                return
            now = sim.now
            counters.consumed_events += count
            if window_start <= now < window_end + spec.warmup:
                counters.consumed_window += count
                counters.consumed_bytes_window += nbytes
            queue = trackers.get(
                partition if tracker_key is None else tracker_key
            )
            remaining = count
            while queue and remaining > 0:
                group_count, send_time = queue[0]
                take = min(group_count, remaining)
                remaining -= take
                if group_count <= take:
                    queue.popleft()
                    result.e2e_latency.record(now - send_time)
                else:
                    queue[0] = (group_count - take, send_time)
                    result.e2e_latency.record(now - send_time)
                    break

    # ------------------------------------------------------------------
    # Probes
    # ------------------------------------------------------------------
    def probe_process():
        while sim.now < window_end:
            yield probe_interval
            if probe is not None:
                probe(sim.now, result)

    # ------------------------------------------------------------------
    for i in range(spec.producers):
        sim.process(producer_process(i))
    consumer_procs = []
    for i in range(spec.consumers):
        consumer_procs.append(sim.process(consumer_process(i)))
    if probe is not None:
        sim.process(probe_process())

    sim.run_until_complete(producers_done, timeout=spec.warmup + spec.duration * 20 + 600)
    if spec.drain and spec.consumers:
        deadline = sim.now + spec.drain_timeout
        while counters.consumed_events < counters.produced_events:
            if sim.now >= deadline:
                break
            sim.run(until=sim.now + 0.25)
    elif spec.consumers:
        # Give tail reads a moment to drain in-flight events.
        sim.run(until=sim.now + 0.5)
    for proc in consumer_procs:
        proc.interrupt()
    sim.run(until=sim.now + 0.1)

    # ------------------------------------------------------------------
    window = spec.duration
    result.produce_rate = counters.produced_window / window
    result.produce_mbps = result.produce_rate * spec.event_size
    result.consume_rate = counters.consumed_window / window
    result.consume_mbps = result.consume_rate * spec.event_size
    result.errors = counters.errors
    result.crashed = bool(getattr(adapter, "crashed", False))
    result.extra["produced_total"] = float(counters.produced_events)
    result.extra["consumed_total"] = float(counters.consumed_events)
    if fault_engine is not None:
        fault_engine.quiesce()
        result.extra["faults_injected"] = float(len(fault_engine.injected))
        for _, action, _target in fault_engine.injected:
            key = f"faults.{action}"
            result.extra[key] = result.extra.get(key, 0.0) + 1.0
    if tracer is not None:
        tracer.stamp_fault_windows()
        result.extra["trace.window_start"] = window_start
        result.extra["trace.window_end"] = window_end
        result.extra["trace.spans"] = float(len(tracer.spans))
    return result


#: memoized spread shares; the result only depends on (count, partitions,
#: rotate mod partitions) and steady-rate workloads cycle through a handful
#: of counts, so the cache stays tiny while saving a list build per tick.
_SPREAD_CACHE: Dict[Tuple[int, int, int], List[Tuple[int, int]]] = {}
_SPREAD_CACHE_MAX = 8192


def _spread(count: int, partitions: int, rotate: int) -> List[Tuple[int, int]]:
    """Distribute ``count`` events over partitions (random-key model).

    Each partition gets count/partitions events; the remainder rotates so
    low-rate workloads still touch all partitions over time.  The returned
    list is shared via a memo cache — callers must not mutate it.
    """
    if partitions == 1:
        return [(0, count)]
    rotate %= partitions
    key = (count, partitions, rotate)
    shares = _SPREAD_CACHE.get(key)
    if shares is not None:
        return shares
    base, remainder = divmod(count, partitions)
    shares = []
    for offset in range(partitions):
        partition = (rotate + offset) % partitions
        share = base + (1 if offset < remainder else 0)
        if share > 0:
            shares.append((partition, share))
    if len(_SPREAD_CACHE) < _SPREAD_CACHE_MAX:
        _SPREAD_CACHE[key] = shares
    return shares
