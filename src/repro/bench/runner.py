"""The workload driver (OpenMessaging-Benchmark-like, §5.1).

Open-loop producers generate events at a target rate, spread over the
topic's partitions according to the key mode ("random" routing keys by
default, as in the paper; "none" disables keys).  Consumers read
concurrently; end-to-end latency is matched through per-partition FIFO
trackers of send timestamps.  Events are generated in per-tick groups
(each group travels the real client/batching/replication path) so
million-events-per-second workloads stay tractable.

Two load-generation extensions plug in via :class:`WorkloadSpec`:

* ``arrival`` — a :class:`repro.workload.ArrivalProcess` replaces the
  constant ``target_rate`` with a time-varying, sim-seeded rate function
  (diurnal, bursty MMPP, flash crowd, ...).  Time is relative to load
  start, and each producer samples its share deterministically.
* ``key_skew`` — a :class:`repro.workload.KeySkew` replaces the uniform
  spread over the key table (Zipf, hot-key churn, ...).

The driver itself is factored as :class:`WorkloadEngine` (spawn the
producer/consumer/probe processes; finalize the measurements) so that
multi-tenant runs (repro.workload.tenants) can multiplex several engines
through one simulation and one cluster.  :func:`run_workload` remains
the single-workload entry point with unchanged behaviour.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.common.errors import ReproError
from repro.common.metrics import TimeSeries
from repro.sim.core import Interrupt, SimFuture, SimulationError, Simulator, all_of
from repro.sim.fluid import FluidController, FluidSpec
from repro.bench.results import BenchResult

__all__ = ["WorkloadSpec", "WorkloadEngine", "run_workload"]

GLOBAL_TRACKER = -1


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark configuration (the OMB workload grammar)."""

    event_size: int = 100
    #: offered load in events/second across all producers (ignored when
    #: ``arrival`` is set)
    target_rate: float = 10_000.0
    partitions: int = 1
    producers: int = 1
    consumers: int = 0
    #: "random" = random routing keys (paper default); "none" = no keys
    key_mode: str = "random"
    #: measured interval (after warmup)
    duration: float = 5.0
    warmup: float = 1.0
    #: load-generation granularity
    tick: float = 0.005
    #: benchmark-driver host count (Table 1: 2; §5.6 uses 10)
    bench_hosts: int = 2
    #: consumers keep draining after producers stop until they catch up
    drain: bool = False
    #: cap on drain time (simulated seconds)
    drain_timeout: float = 300.0
    #: time-varying rate function (repro.workload.ArrivalProcess); when
    #: set, generation follows ``arrival.rate(t)`` with t=0 at load start
    arrival: Optional[object] = None
    #: key-spread model (repro.workload.KeySkew); None = uniform spread
    key_skew: Optional[object] = None
    #: max unacked backlog, in events, before the open loop stops piling
    #: on (None: 2x the *peak* rate + 10k — bursty arrivals legitimately
    #: exceed 2x the mean, so the cap scales with the pattern's peak)
    backlog_cap: Optional[float] = None
    #: cap on total simulated load+flush time; None uses the default
    #: ``warmup + duration * 20 + 600``.  Hitting the cap no longer
    #: aborts the run: the result is finalized (the measurement window is
    #: long past) with ``extra["load_timed_out"] = 1.0``.
    load_timeout: Optional[float] = None
    #: how long after the window closes an ack of an in-window send still
    #: counts.  Representative-slice runs (adapters' ``slice_factor=k``)
    #: should grow this with k: the slice transform preserves *throughput*
    #: (1/k load against 1/k-bandwidth devices) but inflates individual
    #: op *latencies* by ~k, so a fixed grace misreads slice-inflated
    #: latency as lost throughput.  Keep it small relative to the window,
    #: or "sustains the rate" degenerates into "eventually drains the
    #: backlog" (DESIGN.md §9 — fig10 uses ``0.25 + 0.01*k``).
    ack_grace: float = 0.25
    #: seeds the arrival samplers and skew routers
    seed: int = 0
    #: hybrid fluid/discrete mode (repro.sim.fluid.FluidSpec); None keeps
    #: the run fully discrete unless the ``REPRO_FLUID`` env toggle is
    #: set.  Strictly an approximation: steady-state stretches are
    #: integrated analytically, transitions stay exact.
    fluid: Optional[object] = None
    #: multi-process sharding request (repro.sim.shard).  The discrete
    #: Pravega/Kafka/Pulsar adapters call across host objects through
    #: shared Python state, so they cannot be process-partitioned:
    #: asking for ``shards > 1`` here records ``extra["shard.refusal"]``
    #: and runs single-shard — the same refusal ladder the fluid mode
    #: uses for unsupported scenarios.  Shard-native actor scenarios run
    #: through ``repro.sim.shard.run_sharded`` instead (see DESIGN.md
    #: §14).
    shards: int = 1

    @property
    def peak_rate(self) -> float:
        """The highest instantaneous offered rate of this workload."""
        if self.arrival is not None:
            return self.arrival.peak_rate
        return self.target_rate

    @property
    def effective_backlog_cap(self) -> float:
        if self.backlog_cap is not None:
            return self.backlog_cap
        return self.peak_rate * 2.0 + 10_000

    @property
    def effective_load_timeout(self) -> float:
        if self.load_timeout is not None:
            return self.load_timeout
        return self.warmup + self.duration * 20 + 600


@dataclass
class _Counters:
    sent_events: int = 0
    produced_events: int = 0
    produced_window: int = 0
    consumed_events: int = 0
    consumed_window: int = 0
    consumed_bytes_window: int = 0
    errors: int = 0


class WorkloadEngine:
    """One tenant's worth of load against a producer/consumer surface.

    ``client`` is anything exposing the adapter surface
    (``new_producer(host)`` / ``new_consumer(host, index, size)``) — a
    whole adapter for single-workload runs, or a per-tenant handle from
    ``adapter.create_tenant`` for multi-tenant runs.  ``start()`` spawns
    the processes; the caller drives the simulator (see ``run_workload``
    / ``repro.workload.tenants``) and then calls ``finalize()``.

    ``observer`` (optional) receives ``on_sent(now, count)`` and
    ``on_ack(send_time, count, latency, ok)`` — the SLO tracker hook.
    ``series_interval`` records offered/acked events-per-second series
    into ``result.series`` for load/scale-event correlation.
    """

    def __init__(
        self,
        sim: Simulator,
        client,
        spec: WorkloadSpec,
        probe: Optional[Callable[[float, BenchResult], None]] = None,
        probe_interval: float = 1.0,
        observer=None,
        label: Optional[str] = None,
        series_interval: Optional[float] = None,
        fault_engine=None,
    ) -> None:
        self.sim = sim
        self.client = client
        self.spec = spec
        self.probe = probe
        self.probe_interval = probe_interval
        self.observer = observer
        self.series_interval = series_interval
        self.fault_engine = fault_engine
        name = getattr(client, "name", "bench")
        self.result = BenchResult(
            label=label or f"{name} p={spec.partitions} w={spec.producers}",
            target_rate=spec.target_rate,
        )
        self.counters = _Counters()
        self.producers_done: SimFuture = sim.future()
        self._consumer_procs: List[object] = []
        self.window_start = 0.0
        self.window_end = 0.0
        self.epoch = 0.0
        self.load_end = 0.0
        fluid_spec = spec.fluid
        if fluid_spec is None and os.environ.get("REPRO_FLUID"):
            fluid_spec = FluidSpec()
        self._fluid_spec = fluid_spec
        shards = spec.shards
        if shards == 1 and os.environ.get("REPRO_SHARDS"):
            shards = max(1, int(os.environ["REPRO_SHARDS"]))
        #: sharding request after the env toggle (``--shards`` plumbing);
        #: >1 on a discrete adapter records the refusal at finalize.
        self._shards_requested = shards
        #: the hybrid-mode controller (None when fully discrete)
        self.fluid: Optional[FluidController] = None

    # ------------------------------------------------------------------
    def start(self) -> "WorkloadEngine":
        sim = self.sim
        spec = self.spec
        result = self.result
        counters = self.counters
        observer = self.observer
        # Optional read-SLI hook: trackers without one (or plain observers)
        # cost a single None check per delivery on the consumer hot path.
        on_delivery = getattr(observer, "on_delivery", None)

        if hasattr(self.client, "total_consumers"):
            self.client.total_consumers = max(spec.consumers, 1)

        epoch = self.epoch = sim.now
        window_start = self.window_start = sim.now + spec.warmup
        window_end = self.window_end = sim.now + spec.warmup + spec.duration
        load_end = self.load_end = window_end
        ack_grace = spec.ack_grace
        if self._fluid_spec is not None:
            self.fluid = FluidController(
                sim, self, self._fluid_spec, fault_engine=self.fault_engine
            )
        fluid_ctl = self.fluid
        if spec.arrival is not None:
            # Report the pattern's mean offered rate over the window.
            result.target_rate = spec.arrival.mean_rate(
                spec.warmup, spec.warmup + spec.duration
            )
        #: per-partition FIFO of (event count, send time); all deques are
        #: created up front so the per-tick hot loop never allocates one
        trackers: Dict[int, Deque[Tuple[int, float]]] = {
            partition: deque() for partition in range(spec.partitions)
        }
        trackers[GLOBAL_TRACKER] = deque()
        self._trackers = trackers
        producers_done = self.producers_done
        producers_running = [spec.producers]

        # --------------------------------------------------------------
        # Producers
        # --------------------------------------------------------------
        def producer_process(index: int):
            handle = self.client.new_producer(f"bench-{index % spec.bench_hosts}")
            rate = spec.target_rate / spec.producers
            carry = 0.0
            rotate = index
            # Hot-loop hoists: one attribute lookup each per run, not per tick.
            tick = spec.tick
            event_size = spec.event_size
            partitions = spec.partitions
            keyless = spec.key_mode == "none"
            backlog_cap = spec.effective_backlog_cap
            send_group = handle.send_group
            sampler = None
            if spec.arrival is not None:
                sampler = spec.arrival.sampler(
                    spec.seed * 1_000_003 + index, 1.0 / spec.producers
                )
            router = None
            if spec.key_skew is not None and not keyless:
                router = spec.key_skew.router(
                    partitions, spec.seed * 1_000_003 + index
                )
            while sim.now < load_end:
                yield tick
                # Analytic span in progress: park on the gate; the fluid
                # controller integrates the offered load meanwhile.
                if fluid_ctl is not None and fluid_ctl.gate is not None:
                    yield fluid_ctl.gate
                    continue
                # Open-loop generation, bounded: once the system is hopelessly
                # behind (several seconds of unacked events), stop piling more
                # into client queues — the run is already saturated, and this
                # keeps overload runs tractable.
                backlog = counters.sent_events - counters.produced_events
                if backlog > backlog_cap:
                    continue
                now = sim.now
                if sampler is not None:
                    count = sampler.events(now - epoch - tick, now - epoch)
                else:
                    carry += rate * tick
                    count = int(carry)
                    if count > 0:
                        carry -= count
                if count <= 0:
                    continue
                counters.sent_events += count
                if observer is not None:
                    observer.on_sent(now, count)
                in_window = window_start <= now < window_end
                if keyless:
                    fut = send_group(None, count, event_size)
                    fut.add_callback(
                        lambda f, n=count, t=now, w=in_window: _ack(f, n, t, w)
                    )
                    trackers[GLOBAL_TRACKER].append((count, now))
                else:
                    if router is not None:
                        shares = router.shares(count, now - epoch)
                    else:
                        # Random keys: spread the group across partitions.
                        shares = _spread(count, partitions, rotate)
                        rotate += 1
                    for partition, share in shares:
                        fut = send_group(partition, share, event_size)
                        fut.add_callback(
                            lambda f, n=share, t=now, w=in_window: _ack(f, n, t, w)
                        )
                        trackers[partition].append((share, now))
            yield handle.flush()
            producers_running[0] -= 1
            if producers_running[0] == 0 and not producers_done.done:
                producers_done.set_result(None)

        def _ack(fut: SimFuture, n: int, send_time: float, in_window: bool) -> None:
            if fut.exception is not None:
                counters.errors += 1
                if observer is not None:
                    observer.on_ack(send_time, n, 0.0, False)
                return
            if fluid_ctl is not None and fluid_ctl.active:
                # Pre-span in-flight sends draining mid-jump: the flow
                # integration already accounts them (they are part of the
                # baseline backlog), so counting here would double-book.
                return
            counters.produced_events += n
            latency = sim.now - send_time
            if fluid_ctl is not None and fluid_ctl.calibrating:
                fluid_ctl.cal_samples.append((latency, n))
            if observer is not None:
                observer.on_ack(send_time, n, latency, True)
            # An ack counts toward the measured rate only if the *ack* also
            # lands near the window: a system whose latency has run away is
            # not sustaining the offered rate.
            if in_window and sim.now <= window_end + ack_grace:
                counters.produced_window += n
                result.write_latency.record(latency)

        # --------------------------------------------------------------
        # Consumers
        # --------------------------------------------------------------
        def consumer_process(index: int):
            handle = self.client.new_consumer(
                f"bench-{index % spec.bench_hosts}", index, spec.event_size
            )
            tracker_key = GLOBAL_TRACKER if spec.key_mode == "none" else None
            while True:
                try:
                    partition, count, nbytes = yield handle.receive()
                except Interrupt:
                    return
                except Exception:  # noqa: BLE001 - crashed broker etc.
                    counters.errors += 1
                    return
                now = sim.now
                counters.consumed_events += count
                if window_start <= now < window_end + spec.warmup:
                    counters.consumed_window += count
                    counters.consumed_bytes_window += nbytes
                queue = trackers.get(
                    partition if tracker_key is None else tracker_key
                )
                remaining = count
                while queue and remaining > 0:
                    group_count, send_time = queue[0]
                    take = min(group_count, remaining)
                    remaining -= take
                    if group_count <= take:
                        queue.popleft()
                        result.e2e_latency.record(now - send_time)
                        if on_delivery is not None:
                            on_delivery(send_time, take, now - send_time)
                    else:
                        queue[0] = (group_count - take, send_time)
                        result.e2e_latency.record(now - send_time)
                        if on_delivery is not None:
                            on_delivery(send_time, take, now - send_time)
                        break

        # --------------------------------------------------------------
        # Probes
        # --------------------------------------------------------------
        def probe_process():
            while sim.now < window_end:
                yield self.probe_interval
                if self.probe is not None:
                    self.probe(sim.now, result)

        def series_process():
            offered = result.series["offered_eps"] = TimeSeries("offered_eps")
            acked = result.series["acked_eps"] = TimeSeries("acked_eps")
            interval = self.series_interval
            prev_sent = prev_acked = 0
            while sim.now < load_end:
                yield interval
                sent, done = counters.sent_events, counters.produced_events
                offered.record(sim.now, (sent - prev_sent) / interval)
                acked.record(sim.now, (done - prev_acked) / interval)
                prev_sent, prev_acked = sent, done

        # --------------------------------------------------------------
        for i in range(spec.producers):
            sim.process(producer_process(i))
        for i in range(spec.consumers):
            self._consumer_procs.append(sim.process(consumer_process(i)))
        if self.probe is not None:
            sim.process(probe_process())
        if self.series_interval is not None:
            sim.process(series_process())
        if fluid_ctl is not None:
            fluid_ctl.start()
        return self

    # ------------------------------------------------------------------
    def interrupt_consumers(self) -> None:
        for proc in self._consumer_procs:
            proc.interrupt()

    def finalize(self) -> BenchResult:
        spec = self.spec
        result = self.result
        counters = self.counters
        window = spec.duration
        result.produce_rate = counters.produced_window / window
        result.produce_mbps = result.produce_rate * spec.event_size
        result.consume_rate = counters.consumed_window / window
        result.consume_mbps = result.consume_rate * spec.event_size
        result.errors = counters.errors
        result.crashed = bool(getattr(self.client, "crashed", False))
        result.extra["produced_total"] = float(counters.produced_events)
        result.extra["consumed_total"] = float(counters.consumed_events)
        # Absolute measurement-window bounds (setup may advance sim time
        # before load starts, so callers can't reconstruct these from the
        # spec alone — needed to align ``result.series`` samples).
        result.extra["window_start"] = self.window_start
        result.extra["window_end"] = self.window_end
        fluid = self.fluid
        if fluid is not None:
            result.extra["fluid.spans"] = float(fluid.spans)
            result.extra["fluid.time_s"] = fluid.fluid_time
            result.extra["fluid.events_avoided"] = fluid.events_avoided
            result.extra["fluid.recalibrations"] = float(fluid.recalibrations)
            if fluid.refusal is not None:
                result.extra["fluid.refusal"] = fluid.refusal
        if self._shards_requested > 1:
            result.extra["shard.refusal"] = (
                "discrete adapters share in-process state across hosts; "
                "ran single-shard (shard-native scenarios: repro.sim.shard)"
            )
        return result


def _drive(sim: Simulator, engines: List[WorkloadEngine]) -> bool:
    """Run until every engine's producers finish (bounded), drain, and
    stop consumers.  Returns False when the load timeout was hit."""
    if len(engines) == 1:
        done = engines[0].producers_done
    else:
        done = all_of(sim, [engine.producers_done for engine in engines])
    timeout = max(engine.spec.effective_load_timeout for engine in engines)
    completed = True
    try:
        sim.run_until_complete(done, timeout=timeout)
    except SimulationError:
        # A hopelessly backlogged system (e.g. Kafka flush-per-message at
        # hundreds of partitions) cannot drain its final flush within any
        # reasonable horizon.  The measurement window is long past, so
        # finalize what was measured instead of aborting the experiment.
        completed = False
        for engine in engines:
            engine.result.extra["load_timed_out"] = 1.0
    if any(e.spec.drain and e.spec.consumers for e in engines):
        deadline = sim.now + max(e.spec.drain_timeout for e in engines)
        while any(
            e.counters.consumed_events < e.counters.produced_events
            for e in engines
        ):
            if sim.now >= deadline:
                break
            sim.run(until=sim.now + 0.25)
    elif any(e.spec.consumers for e in engines):
        # Give tail reads a moment to drain in-flight events.
        sim.run(until=sim.now + 0.5)
    for engine in engines:
        engine.interrupt_consumers()
    sim.run(until=sim.now + 0.1)
    return completed


def run_workload(
    sim: Simulator,
    adapter,
    spec: WorkloadSpec,
    probe: Optional[Callable[[float, BenchResult], None]] = None,
    probe_interval: float = 1.0,
    fault_engine=None,
    tracer=None,
    series_interval: Optional[float] = None,
) -> BenchResult:
    """Run one workload to completion and return its measurements.

    With ``fault_engine`` (a started-or-not :class:`repro.faults.FaultEngine`
    already wired into the system under test) the engine's schedule starts
    when load starts, and the injected-fault counts land in
    ``result.extra`` — fault-aware benchmarking.

    With ``tracer`` (a :class:`repro.obs.Tracer` already wired into the
    adapter) the measurement window bounds and span counts land in
    ``result.extra`` so the critical-path analyzer can restrict itself to
    in-window events.

    With ``series_interval`` the offered/acked events-per-second series
    land in ``result.series`` — ``acked_eps`` is the system's steady-state
    delivery rate, independent of the ``ack_grace`` window accounting
    (the right measure for "does it sustain the offered rate").
    """
    adapter.setup(spec.partitions)
    if fault_engine is not None:
        fault_engine.start()
    engine = WorkloadEngine(
        sim, adapter, spec, probe=probe, probe_interval=probe_interval,
        series_interval=series_interval, fault_engine=fault_engine,
    )
    engine.start()
    _drive(sim, [engine])
    result = engine.finalize()
    if fault_engine is not None:
        fault_engine.quiesce()
        result.extra["faults_injected"] = float(len(fault_engine.injected))
        for _, action, _target in fault_engine.injected:
            key = f"faults.{action}"
            result.extra[key] = result.extra.get(key, 0.0) + 1.0
    if tracer is not None:
        tracer.stamp_fault_windows()
        if engine.fluid is not None:
            for start, end in engine.fluid.windows:
                tracer.record_fluid_window(start, end)
        result.extra["trace.window_start"] = engine.window_start
        result.extra["trace.window_end"] = engine.window_end
        result.extra["trace.spans"] = float(len(tracer.spans))
    return result


#: memoized spread shares; the result only depends on (count, partitions,
#: rotate mod partitions) and steady-rate workloads cycle through a handful
#: of counts, so the cache stays tiny while saving a list build per tick.
_SPREAD_CACHE: Dict[Tuple[int, int, int], List[Tuple[int, int]]] = {}
_SPREAD_CACHE_MAX = 8192


def _spread(count: int, partitions: int, rotate: int) -> List[Tuple[int, int]]:
    """Distribute ``count`` events over partitions (random-key model).

    Each partition gets count/partitions events; the remainder rotates so
    low-rate workloads still touch all partitions over time.  The returned
    list is shared via a memo cache — callers must not mutate it.
    """
    if partitions == 1:
        return [(0, count)]
    rotate %= partitions
    key = (count, partitions, rotate)
    shares = _SPREAD_CACHE.get(key)
    if shares is not None:
        return shares
    base, remainder = divmod(count, partitions)
    shares = []
    for offset in range(partitions):
        partition = (rotate + offset) % partitions
        share = base + (1 if offset < remainder else 0)
        if share > 0:
            shares.append((partition, share))
    if len(_SPREAD_CACHE) < _SPREAD_CACHE_MAX:
        _SPREAD_CACHE[key] = shares
    return shares
