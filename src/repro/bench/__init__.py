"""Benchmark harness: OMB-like workloads, system adapters, sweeps,
result tables (reproduces every figure of the paper's §5)."""

from repro.bench.adapters import (
    KafkaAdapter,
    PravegaAdapter,
    PulsarAdapter,
    attach_tracer,
)
from repro.bench.keys import modulo_key_table, range_key_table
from repro.bench.results import (
    BenchResult,
    Table,
    fmt_bytes_rate,
    fmt_latency,
    fmt_rate,
)
from repro.bench.runner import WorkloadSpec, run_workload
from repro.bench.sweeps import find_max_throughput, sweep_rates
from repro.sim.fluid import FluidSpec

__all__ = [
    "FluidSpec",
    "PravegaAdapter",
    "KafkaAdapter",
    "PulsarAdapter",
    "attach_tracer",
    "WorkloadSpec",
    "run_workload",
    "sweep_rates",
    "find_max_throughput",
    "BenchResult",
    "Table",
    "fmt_rate",
    "fmt_bytes_rate",
    "fmt_latency",
    "modulo_key_table",
    "range_key_table",
]
