"""Uniform system adapters for the benchmark harness.

One adapter per system under test (Pravega / Kafka / Pulsar), each
deploying the Table 1 topology and exposing the same producer/consumer
surface to the load generator:

* ``setup(partitions)`` — create the topic/stream
* ``new_producer(host)`` — returns an object with
  ``send_group(partition_index, count, size) -> SimFuture`` and ``flush()``
* ``new_consumer(host, partitions)`` — returns an object with
  ``receive() -> SimFuture[(partition, count, bytes)]``

``slice_factor`` implements the representative-slice scaling used for the
high-parallelism experiments (Figs. 10-11): simulating 1/k of the
partitions at 1/k of the load against devices with 1/k bandwidth and k×
per-op costs is exactly load-equivalent for our linear device models,
and keeps very large configurations (5 000 partitions, 100 writers)
tractable.  Reported rates are scaled back up by the caller.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from repro.common.errors import ReproError
from repro.bookkeeper.bookie import Bookie
from repro.bookkeeper.client import BookKeeperCluster
from repro.lts import FileSystemLTS, LtsSpec
from repro.pravega import (
    PravegaCluster,
    PravegaClusterConfig,
    ScalingPolicy,
    StreamConfiguration,
)
from repro.pravega.client.reader import ReaderConfig
from repro.pravega.client.writer import WriterConfig
from repro.pravega.container import CacheSpec, ContainerConfig
from repro.pravega.segment_store import SegmentStoreConfig

#: same 128 MB per-container capacity as the default spec, but with 64 KB
#: simulation blocks (16x fewer block operations) — the Fig. 4 layout is
#: exercised at full 4 KB granularity by the unit/property tests; benches
#: only need the capacity/eviction behaviour
BENCH_CACHE = CacheSpec(block_size=65536, blocks_per_buffer=32, max_buffers=64)
from repro.kafka import (
    KafkaBroker,
    KafkaCluster,
    KafkaConsumer,
    KafkaConsumerGroup,
    KafkaProducer,
    KafkaProducerConfig,
)
from repro.pulsar import (
    PulsarBroker,
    PulsarBrokerConfig,
    PulsarCluster,
    PulsarConsumer,
    PulsarProducer,
    PulsarProducerConfig,
)
from repro.sim import DiskSpec, Network, NetworkSpec, Simulator
from repro.sim.disk import Disk
from repro.zookeeper import ZookeeperService
from repro.bench.keys import modulo_key_table, range_key_table

__all__ = [
    "scaled_disk_spec",
    "scaled_network_spec",
    "PravegaAdapter",
    "KafkaAdapter",
    "PulsarAdapter",
]


def scaled_disk_spec(spec: DiskSpec, k: float) -> DiskSpec:
    if k == 1:
        return spec
    return DiskSpec(
        bandwidth=spec.bandwidth / k,
        op_latency=spec.op_latency * k,
        file_switch_latency=spec.file_switch_latency * k,
        fsync_latency=spec.fsync_latency * k,
        name=spec.name,
    )


def scaled_network_spec(spec: NetworkSpec, k: float) -> NetworkSpec:
    if k == 1:
        return spec
    return NetworkSpec(
        bandwidth=spec.bandwidth / k,
        rtt=spec.rtt,
        per_message_overhead=spec.per_message_overhead * k,
        local_latency=spec.local_latency,
    )


def scaled_lts_spec(spec: LtsSpec, k: float) -> LtsSpec:
    if k == 1:
        return spec
    return LtsSpec(
        per_stream_bandwidth=spec.per_stream_bandwidth,
        aggregate_bandwidth=spec.aggregate_bandwidth / k,
        op_latency=spec.op_latency,
        name=spec.name,
    )


# ----------------------------------------------------------------------
# Pravega
# ----------------------------------------------------------------------
class _PravegaProducer:
    def __init__(
        self,
        adapter: "PravegaAdapter",
        host: str,
        stream: str = "stream",
        keys: Optional[List[str]] = None,
        span_attrs: Optional[dict] = None,
    ) -> None:
        self.writer = adapter.cluster.create_writer(
            host, "bench", stream, adapter.writer_config
        )
        self.writer.tracer = adapter.tracer
        if span_attrs:
            self.writer.span_attrs = span_attrs
        self.keys = adapter.keys if keys is None else keys

    def send_group(self, partition: Optional[int], count: int, size: int):
        key = None if partition is None else self.keys[partition]
        return self.writer.write_synthetic_events(count, size, routing_key=key)

    def flush(self):
        return self.writer.flush()


class _PravegaConsumer:
    def __init__(
        self,
        adapter: "PravegaAdapter",
        host: str,
        index: int,
        size: int,
        group=None,
        reader_prefix: str = "bench-reader",
    ) -> None:
        self.reader = adapter.cluster.create_reader(
            host,
            f"{reader_prefix}-{index}",
            adapter.reader_group if group is None else group,
            ReaderConfig(fixed_event_size=size),
        )
        sim = adapter.sim
        sim.run_until_complete(self.reader.join(), timeout=60)

    def receive(self):
        sim = self.reader.sim

        def run():
            batch = yield self.reader.read_next()
            return batch.segment_number, batch.event_count, batch.byte_count

        return sim.process(run())


class PravegaAdapter:
    """Deploys the Table 1 Pravega topology behind the uniform bench surface."""

    name = "Pravega"

    def __init__(
        self,
        sim: Simulator,
        lts_kind: str = "efs",
        journal_sync: bool = True,
        num_containers: int = 8,
        writer_config: Optional[WriterConfig] = None,
        slice_factor: float = 1.0,
        scaling_policy: Optional[ScalingPolicy] = None,
        tracer=None,
    ) -> None:
        self.sim = sim
        self.slice_factor = slice_factor
        self.tracer = tracer
        base = PravegaClusterConfig()
        lts_spec = None
        if slice_factor != 1 and lts_kind == "efs":
            lts_spec = scaled_lts_spec(FileSystemLTS(Simulator()).spec, slice_factor)
        config = PravegaClusterConfig(
            num_segment_stores=3,
            num_containers=num_containers,
            lts_kind=lts_kind,
            journal_sync=journal_sync,
            store=SegmentStoreConfig(container=ContainerConfig(cache=BENCH_CACHE)),
            disk=scaled_disk_spec(base.disk, slice_factor),
            network=scaled_network_spec(base.network, slice_factor),
            lts_spec=lts_spec,
        )
        self.cluster = PravegaCluster.build(sim, config)
        if tracer is not None:
            # Containers are created lazily by the stores; they pick the
            # tracer up from their store at host_container time.
            for store in self.cluster.stores.values():
                store.tracer = tracer
        self.writer_config = writer_config or WriterConfig()
        self.scaling_policy = scaling_policy
        self.keys: List[str] = []
        self.reader_group = None
        self.partitions = 0
        self._controller = None

    def _ensure_started(self):
        """Start the cluster and create the bench scope exactly once.

        Returns the (single) controller client — ``setup`` and
        ``create_tenant`` share it so the simulated event sequence for
        single-stream runs is unchanged from before tenants existed."""
        if self._controller is None:
            sim = self.sim
            sim.run_until_complete(self.cluster.start(), timeout=300)
            self._controller = self.cluster.controller_client("bench-0")
            sim.run_until_complete(self._controller.create_scope("bench"))
        return self._controller

    def setup(self, partitions: int) -> None:
        client = self._ensure_started()
        policy = self.scaling_policy or ScalingPolicy.fixed(partitions)
        self.sim.run_until_complete(
            client.create_stream(
                "bench", "stream", StreamConfiguration(scaling=policy)
            )
        )
        self.partitions = partitions
        self.keys = range_key_table(partitions)

    def create_tenant(self, name: str, partitions: int, scaling=None):
        """Provision one tenant stream (``bench/<name>``) on the shared
        cluster and return its producer/consumer surface."""
        client = self._ensure_started()
        policy = scaling or ScalingPolicy.fixed(partitions)
        self.sim.run_until_complete(
            client.create_stream(
                "bench", name, StreamConfiguration(scaling=policy)
            )
        )
        return _PravegaTenant(self, name, partitions)

    def new_producer(self, host: str) -> _PravegaProducer:
        return _PravegaProducer(self, host)

    def new_consumer(self, host: str, index: int, event_size: int) -> _PravegaConsumer:
        if self.reader_group is None:
            self.reader_group = self.sim.run_until_complete(
                self.cluster.create_reader_group("bench-0", "bench-group", "bench", "stream"),
                timeout=60,
            )
        return _PravegaConsumer(self, host, index, event_size)

    @property
    def crashed(self) -> bool:
        return False

    def lts_backlog_bytes(self) -> int:
        total = 0
        for store in self.cluster.stores.values():
            for container in store.containers.values():
                total += container.storage_writer.backlog_bytes
        return total

    def drive_bytes_written(self) -> int:
        return sum(b.journal_disk.bytes_written for b in self.cluster.bk_cluster.bookies.values())


class _PravegaTenant:
    """One tenant's stream on a shared Pravega cluster."""

    def __init__(self, adapter: PravegaAdapter, tenant: str, partitions: int) -> None:
        self.adapter = adapter
        self.tenant = tenant
        self.name = f"Pravega/{tenant}"
        self.stream = tenant
        self.partitions = partitions
        self.keys = range_key_table(partitions)
        self.reader_group = None
        self.span_attrs = {"tenant": tenant}

    def new_producer(self, host: str) -> _PravegaProducer:
        return _PravegaProducer(
            self.adapter,
            host,
            stream=self.stream,
            keys=self.keys,
            span_attrs=self.span_attrs,
        )

    def new_consumer(self, host: str, index: int, event_size: int) -> _PravegaConsumer:
        if self.reader_group is None:
            self.reader_group = self.adapter.sim.run_until_complete(
                self.adapter.cluster.create_reader_group(
                    "bench-0", f"{self.tenant}-group", "bench", self.stream
                ),
                timeout=60,
            )
        return _PravegaConsumer(
            self.adapter,
            host,
            index,
            event_size,
            group=self.reader_group,
            reader_prefix=f"{self.tenant}-reader",
        )

    @property
    def crashed(self) -> bool:
        return False


# ----------------------------------------------------------------------
# Kafka
# ----------------------------------------------------------------------
class _KafkaProducerHandle:
    def __init__(
        self,
        adapter: "KafkaAdapter",
        host: str,
        topic: str = "topic",
        keys: Optional[List[str]] = None,
        span_attrs: Optional[dict] = None,
    ) -> None:
        self.producer = KafkaProducer(
            adapter.sim, adapter.cluster, topic, host, adapter.producer_config
        )
        self.producer.tracer = adapter.tracer
        if span_attrs:
            self.producer.span_attrs = span_attrs
        self.keys = adapter.keys if keys is None else keys

    def send_group(self, partition: Optional[int], count: int, size: int):
        key = None if partition is None else self.keys[partition]
        return self.producer.send(count * size, key=key, count=count)

    def flush(self):
        return self.producer.flush()


class _KafkaConsumerHandle:
    def __init__(self, adapter: "KafkaAdapter", host: str, group=None) -> None:
        self.consumer = KafkaConsumer(
            adapter.sim,
            adapter.cluster,
            adapter.group if group is None else group,
            host,
        )

    def receive(self):
        sim = self.consumer.sim

        def run():
            while True:
                batches = yield self.consumer.poll()
                if batches:
                    partition = batches[0].partition
                    count = sum(b.record_count for b in batches)
                    nbytes = sum(b.byte_count for b in batches)
                    return partition, count, nbytes

        return sim.process(run())


class KafkaAdapter:
    """Deploys the Table 1 Kafka topology behind the uniform bench surface."""

    name = "Kafka"

    def __init__(
        self,
        sim: Simulator,
        flush_every_message: bool = False,
        producer_config: Optional[KafkaProducerConfig] = None,
        slice_factor: float = 1.0,
        tracer=None,
    ) -> None:
        self.sim = sim
        self.slice_factor = slice_factor
        self.tracer = tracer
        network = Network(sim, scaled_network_spec(NetworkSpec(), slice_factor))
        self.cluster = KafkaCluster(sim, network)
        disk_spec = scaled_disk_spec(DiskSpec(), slice_factor)
        for i in range(3):
            self.cluster.add_broker(
                KafkaBroker(
                    sim,
                    f"broker-{i}",
                    network,
                    disk_spec=disk_spec,
                    flush_every_message=flush_every_message,
                )
            )
        self.producer_config = producer_config or KafkaProducerConfig()
        self.keys: List[str] = []
        self.group: Optional[KafkaConsumerGroup] = None

    def setup(self, partitions: int) -> None:
        self.cluster.create_topic("topic", partitions)
        self.keys = modulo_key_table(partitions)
        self.group = KafkaConsumerGroup(self.cluster, "topic", "bench-group")

    def create_tenant(self, name: str, partitions: int, scaling=None):
        """Provision one tenant topic on the shared brokers.  Kafka has
        no auto-scaling; ``scaling`` is accepted for surface parity and
        ignored (the fixed-partition baseline of the experiments)."""
        self.cluster.create_topic(name, partitions)
        return _KafkaTenant(self, name, partitions)

    def new_producer(self, host: str) -> _KafkaProducerHandle:
        return _KafkaProducerHandle(self, host)

    def new_consumer(self, host: str, index: int, event_size: int) -> _KafkaConsumerHandle:
        return _KafkaConsumerHandle(self, host)

    @property
    def crashed(self) -> bool:
        return any(not b.alive for b in self.cluster.brokers.values())

    def drive_bytes_written(self) -> int:
        return sum(b.disk.bytes_written for b in self.cluster.brokers.values())


class _KafkaTenant:
    """One tenant's topic on a shared Kafka cluster."""

    def __init__(self, adapter: KafkaAdapter, tenant: str, partitions: int) -> None:
        self.adapter = adapter
        self.tenant = tenant
        self.name = f"Kafka/{tenant}"
        self.topic = tenant
        self.keys = modulo_key_table(partitions)
        self.group = KafkaConsumerGroup(adapter.cluster, tenant, f"{tenant}-group")
        self.span_attrs = {"tenant": tenant}

    def new_producer(self, host: str) -> _KafkaProducerHandle:
        return _KafkaProducerHandle(
            self.adapter,
            host,
            topic=self.topic,
            keys=self.keys,
            span_attrs=self.span_attrs,
        )

    def new_consumer(self, host: str, index: int, event_size: int) -> _KafkaConsumerHandle:
        return _KafkaConsumerHandle(self.adapter, host, group=self.group)

    @property
    def crashed(self) -> bool:
        return self.adapter.crashed


# ----------------------------------------------------------------------
# Pulsar
# ----------------------------------------------------------------------
class _PulsarProducerHandle:
    def __init__(
        self,
        adapter: "PulsarAdapter",
        host: str,
        topic: str = "topic",
        keys: Optional[List[str]] = None,
        span_attrs: Optional[dict] = None,
    ) -> None:
        self.producer = PulsarProducer(
            adapter.sim, adapter.cluster, topic, host, adapter.producer_config
        )
        self.producer.tracer = adapter.tracer
        if span_attrs:
            self.producer.span_attrs = span_attrs
        self.keys = adapter.keys if keys is None else keys

    def send_group(self, partition: Optional[int], count: int, size: int):
        key = None if partition is None else self.keys[partition]
        return self.producer.send(count * size, key=key, count=count)

    def flush(self):
        return self.producer.flush()


class _PulsarConsumerHandle:
    def __init__(
        self,
        adapter: "PulsarAdapter",
        host: str,
        partitions: List[int],
        topic: str = "topic",
    ) -> None:
        self.consumer = PulsarConsumer(
            adapter.sim, adapter.cluster, topic, host, partitions=partitions
        )

    def receive(self):
        sim = self.consumer.sim

        def run():
            while True:
                batch = yield self.consumer.receive()
                if batch.record_count:
                    return batch.partition, batch.record_count, batch.byte_count

        return sim.process(run())


class PulsarAdapter:
    """Deploys the Table 1 Pulsar topology behind the uniform bench surface."""

    name = "Pulsar"

    def __init__(
        self,
        sim: Simulator,
        tiering: bool = True,
        broker_config: Optional[PulsarBrokerConfig] = None,
        producer_config: Optional[PulsarProducerConfig] = None,
        slice_factor: float = 1.0,
        tracer=None,
    ) -> None:
        self.sim = sim
        self.slice_factor = slice_factor
        self.tracer = tracer
        network = Network(sim, scaled_network_spec(NetworkSpec(), slice_factor))
        bk = BookKeeperCluster(sim, network)
        lts_spec = scaled_lts_spec(
            LtsSpec(
                per_stream_bandwidth=160e6,
                aggregate_bandwidth=1000e6,
                op_latency=15e-3,
                name="s3",
            ),
            slice_factor,
        )
        self.lts = FileSystemLTS(sim, lts_spec)
        base = broker_config or PulsarBrokerConfig()
        if not tiering:
            base = replace(base, ledger_rollover_bytes=2**62)
        if slice_factor != 1:
            base = replace(
                base,
                per_entry_cpu=base.per_entry_cpu * slice_factor,
                cpu_bandwidth=base.cpu_bandwidth / slice_factor,
                memory_limit=int(base.memory_limit / slice_factor),
                ledger_rollover_bytes=int(base.ledger_rollover_bytes / slice_factor)
                if tiering
                else base.ledger_rollover_bytes,
            )
        self.broker_config = base
        self.cluster = PulsarCluster(sim, network, bk, self.lts, base)
        disk_spec = scaled_disk_spec(DiskSpec(), slice_factor)
        for i in range(3):
            name = f"pulsar-{i}"
            bk.add_bookie(Bookie(sim, name, Disk(sim, disk_spec)))
            self.cluster.add_broker(
                PulsarBroker(sim, name, network, bk, self.lts, base)
            )
        self.producer_config = producer_config or PulsarProducerConfig()
        self.keys: List[str] = []
        self.partitions = 0
        #: set by the runner before consumers are created
        self.total_consumers = 1

    def setup(self, partitions: int) -> None:
        self.cluster.create_topic("topic", partitions)
        self.keys = modulo_key_table(partitions)
        self.partitions = partitions

    def create_tenant(self, name: str, partitions: int, scaling=None):
        """Provision one tenant topic on the shared brokers (``scaling``
        accepted for surface parity; Pulsar partitions are fixed)."""
        self.cluster.create_topic(name, partitions)
        return _PulsarTenant(self, name, partitions)

    def new_producer(self, host: str) -> _PulsarProducerHandle:
        return _PulsarProducerHandle(self, host)

    def new_consumer(self, host: str, index: int, event_size: int) -> _PulsarConsumerHandle:
        mine = [
            p for p in range(self.partitions) if p % self.total_consumers == index
        ]
        return _PulsarConsumerHandle(self, host, mine or [0])

    @property
    def crashed(self) -> bool:
        return self.cluster.any_broker_crashed

    def unoffloaded_backlog(self) -> int:
        return self.cluster.unoffloaded_backlog()

    def drive_bytes_written(self) -> int:
        return sum(
            b.journal_disk.bytes_written
            for b in self.cluster.bk_cluster.bookies.values()
        )


class _PulsarTenant:
    """One tenant's topic on a shared Pulsar cluster."""

    def __init__(self, adapter: PulsarAdapter, tenant: str, partitions: int) -> None:
        self.adapter = adapter
        self.tenant = tenant
        self.name = f"Pulsar/{tenant}"
        self.topic = tenant
        self.partitions = partitions
        self.keys = modulo_key_table(partitions)
        self.span_attrs = {"tenant": tenant}
        #: set by the workload engine before consumers are created
        self.total_consumers = 1

    def new_producer(self, host: str) -> _PulsarProducerHandle:
        return _PulsarProducerHandle(
            self.adapter,
            host,
            topic=self.topic,
            keys=self.keys,
            span_attrs=self.span_attrs,
        )

    def new_consumer(self, host: str, index: int, event_size: int) -> _PulsarConsumerHandle:
        mine = [
            p for p in range(self.partitions) if p % self.total_consumers == index
        ]
        return _PulsarConsumerHandle(self.adapter, host, mine or [0], topic=self.topic)

    @property
    def crashed(self) -> bool:
        return self.adapter.crashed


def attach_tracer(adapter, tracer) -> None:
    """Wire a tracer into an already-built adapter.

    Equivalent to passing ``tracer=`` at construction, for callers (the
    figure benchmarks) that build adapters through tracer-unaware
    factories.  Must run before ``setup()``: Pravega containers created
    afterwards inherit the tracer from their segment store, and
    producers read ``adapter.tracer`` when the runner creates them.
    """
    adapter.tracer = tracer
    stores = getattr(getattr(adapter, "cluster", None), "stores", None)
    if stores:
        for store in stores.values():
            store.tracer = tracer
