"""Trace-enabled benchmark CLI.

Runs one workload against one system with the tracing subsystem armed,
prints the critical-path decomposition of the acknowledged-write latency
(network / journal fsync / quorum wait / queueing), and optionally writes
a Chrome trace-event JSON loadable in Perfetto (``--trace out.json``).

Example (the Fig. 5 durable-write point)::

    python -m repro.bench --system pravega --rate 1000 --partitions 16 \
        --duration 2 --trace pravega.trace.json
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.adapters import KafkaAdapter, PravegaAdapter, PulsarAdapter
from repro.bench.runner import WorkloadSpec, run_workload
from repro.bench.results import fmt_latency
from repro.obs import Tracer, event_records, export_chrome_trace, median_record
from repro.sim import Simulator

SYSTEMS = ("pravega", "pravega-nosync", "kafka", "kafka-noflush", "pulsar")


def make_adapter(system: str, sim: Simulator, tracer: Tracer):
    if system == "pravega":
        return PravegaAdapter(sim, journal_sync=True, tracer=tracer)
    if system == "pravega-nosync":
        return PravegaAdapter(sim, journal_sync=False, tracer=tracer)
    if system == "kafka":
        return KafkaAdapter(sim, flush_every_message=True, tracer=tracer)
    if system == "kafka-noflush":
        return KafkaAdapter(sim, flush_every_message=False, tracer=tracer)
    if system == "pulsar":
        return PulsarAdapter(sim, tracer=tracer)
    raise ValueError(f"unknown system {system!r}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--system", choices=SYSTEMS, default="pravega")
    parser.add_argument("--rate", type=float, default=1000.0, help="events/s")
    parser.add_argument("--event-size", type=int, default=100)
    parser.add_argument("--partitions", type=int, default=16)
    parser.add_argument("--producers", type=int, default=1)
    parser.add_argument("--duration", type=float, default=2.0)
    parser.add_argument("--warmup", type=float, default=0.5)
    parser.add_argument("--key-mode", choices=("random", "none"), default="random")
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a Chrome trace-event JSON (Perfetto-loadable) here",
    )
    parser.add_argument(
        "--no-tracing", action="store_true",
        help="run with the tracer disabled (overhead baseline)",
    )
    args = parser.parse_args(argv)

    sim = Simulator()
    tracer = Tracer(sim, enabled=not args.no_tracing)
    adapter = make_adapter(args.system, sim, tracer)
    spec = WorkloadSpec(
        event_size=args.event_size,
        target_rate=args.rate,
        partitions=args.partitions,
        producers=args.producers,
        duration=args.duration,
        warmup=args.warmup,
        key_mode=args.key_mode,
    )
    result = run_workload(sim, adapter, spec, tracer=tracer)

    print(f"{adapter.name}: {result.produce_rate:,.0f} events/s acked")
    print(f"  write latency p50 {fmt_latency(result.write_latency.p50)}"
          f"  p95 {fmt_latency(result.write_latency.p95)}")
    if not tracer.enabled:
        print("  tracing disabled "
              f"(spans created: {tracer.spans_created})")
        return 0

    window = (
        result.extra["trace.window_start"],
        result.extra["trace.window_end"],
    )
    records = event_records(tracer, window=window)
    print(f"  spans: {len(tracer.spans)}  in-window write events: {len(records)}")
    if records:
        p50 = median_record(records)
        print("  p50 event critical path:")
        for kind in ("network", "fsync", "quorum", "queueing"):
            share = p50[kind] / p50["total"] * 100 if p50["total"] else 0.0
            print(f"    {kind:<9} {fmt_latency(p50[kind]):>10}  ({share:5.1f}%)")
        print(f"    {'total':<9} {fmt_latency(p50['total']):>10}")
    if args.trace:
        export_chrome_trace(tracer, args.trace)
        print(f"  trace written to {args.trace} "
              f"(load in https://ui.perfetto.dev)")
    return 0


if __name__ == "__main__":
    # `python -m repro.bench suite ...` delegates to the parallel
    # figure-suite runner, `... gate ...` to the benchmark regression
    # gate; everything else is the trace CLI above.
    if len(sys.argv) > 1 and sys.argv[1] == "suite":
        from repro.bench.suite import main as suite_main

        sys.exit(suite_main(sys.argv[2:]))
    if len(sys.argv) > 1 and sys.argv[1] == "gate":
        from repro.bench.gate import main as gate_main

        sys.exit(gate_main(sys.argv[2:]))
    sys.exit(main())
