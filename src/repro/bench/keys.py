"""Routing-key tables for the workloads.

The paper's workloads use random routing keys (§5.1).  To drive each
system at a controlled per-partition rate, the load generator needs, for
every partition/segment index, a key that routes to it under the
system's own hash:

* Kafka/Pulsar: ``stable_hash64(key) % partitions``
* Pravega: ``routing_key_position(key)`` falling in the segment's range
  (initial segments split [0,1) evenly, so bucket = floor(pos * n)).

Key tables are found by rejection sampling over a deterministic key
stream, so runs are reproducible.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.hashing import routing_key_position, stable_hash64

__all__ = ["modulo_key_table", "range_key_table"]

_CACHE_MODULO: Dict[int, List[str]] = {}
_CACHE_RANGE: Dict[int, List[str]] = {}


def modulo_key_table(partitions: int) -> List[str]:
    """keys[p] routes to partition p under hash % partitions."""
    cached = _CACHE_MODULO.get(partitions)
    if cached is not None:
        return cached
    keys: List[str] = [None] * partitions  # type: ignore[list-item]
    found = 0
    i = 0
    while found < partitions:
        key = f"key-{i}"
        i += 1
        p = stable_hash64(key) % partitions
        if keys[p] is None:
            keys[p] = key
            found += 1
    _CACHE_MODULO[partitions] = keys
    return keys


def range_key_table(segments: int) -> List[str]:
    """keys[s] routes to initial segment s (equal ranges over [0, 1))."""
    cached = _CACHE_RANGE.get(segments)
    if cached is not None:
        return cached
    keys: List[str] = [None] * segments  # type: ignore[list-item]
    found = 0
    i = 0
    while found < segments:
        key = f"key-{i}"
        i += 1
        bucket = min(int(routing_key_position(key) * segments), segments - 1)
        if keys[bucket] is None:
            keys[bucket] = key
            found += 1
    _CACHE_RANGE[segments] = keys
    return keys
