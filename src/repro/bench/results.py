"""Benchmark result containers and plain-text reporting.

Every figure bench prints the same kind of table: one row per
configuration with achieved throughput and latency percentiles, plus a
"paper" column stating the claim being reproduced so the output is
self-auditing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.metrics import LatencyHistogram, TimeSeries

__all__ = ["BenchResult", "Table", "fmt_rate", "fmt_bytes_rate", "fmt_latency"]


@dataclass
class BenchResult:
    """Outcome of one workload run."""

    label: str = ""
    #: offered load, events/s
    target_rate: float = 0.0
    #: measured events/s acknowledged during the measurement window
    produce_rate: float = 0.0
    #: measured bytes/s acknowledged (application payload bytes)
    produce_mbps: float = 0.0
    #: measured events/s consumed
    consume_rate: float = 0.0
    consume_mbps: float = 0.0
    write_latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    e2e_latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    errors: int = 0
    crashed: bool = False
    #: free-form extra measurements (backlog bytes, segment counts, ...)
    extra: Dict[str, float] = field(default_factory=dict)
    series: Dict[str, TimeSeries] = field(default_factory=dict)

    @property
    def saturated(self) -> bool:
        """The system did not sustain the offered rate: it either acked
        too few events in the window or its latency ran away (queues
        growing without bound)."""
        if self.produce_rate < 0.9 * self.target_rate:
            return True
        p95 = self.write_latency.p95
        return p95 == p95 and p95 > 1.0  # NaN-safe

    def summary(self) -> Dict[str, float]:
        return {
            "target_eps": self.target_rate,
            "produce_eps": self.produce_rate,
            "produce_MBps": self.produce_mbps / 1e6,
            "write_p50_ms": self.write_latency.p50 * 1e3,
            "write_p95_ms": self.write_latency.p95 * 1e3,
            "e2e_p95_ms": self.e2e_latency.p95 * 1e3,
            "errors": float(self.errors),
        }


def fmt_rate(events_per_sec: float) -> str:
    if math.isnan(events_per_sec):
        return "-"
    if events_per_sec >= 1e6:
        return f"{events_per_sec / 1e6:.2f}M e/s"
    if events_per_sec >= 1e3:
        return f"{events_per_sec / 1e3:.1f}k e/s"
    return f"{events_per_sec:.0f} e/s"


def fmt_bytes_rate(bytes_per_sec: float) -> str:
    if math.isnan(bytes_per_sec):
        return "-"
    return f"{bytes_per_sec / 1e6:.1f} MB/s"


def fmt_latency(seconds: float) -> str:
    if math.isnan(seconds):
        return "-"
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    return f"{seconds * 1e3:.2f} ms"


class Table:
    """Minimal fixed-width table renderer for bench output."""

    def __init__(self, columns: List[str], title: str = "") -> None:
        self.title = title
        self.columns = columns
        self.rows: List[List[str]] = []

    def add(self, *cells: object) -> None:
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)

    def show(self) -> None:
        print()
        print(self.render())
        print()
