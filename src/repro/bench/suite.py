"""Parallel figure-suite runner.

Every figure benchmark is a deterministic, single-threaded simulation, so
the whole suite is embarrassingly parallel: this module fans the figure
scenarios out across a ``ProcessPoolExecutor`` and collects per-scenario
wall time, simulated time, kernel events and headline metrics into one
JSON report (committed as ``BENCH_suite.json``).

Determinism contract: a scenario's *results* (simulated time, kernel
event counts, figure metrics) are identical regardless of ``--jobs`` —
only wall-clock timing fields may differ between runs.  ``--check``
exercises the machinery on three fast smoke scenarios and verifies that
contract across serial and parallel execution.

Usage::

    python -m repro.bench suite --jobs 4 --json BENCH_suite.json
    python -m repro.bench suite --check
    python benchmarks/run_suite.py --jobs 4 --only fig05,fig08

Scenario functions run with their pytest-benchmark ``benchmark`` fixture
replaced by a no-timing stand-in, so the figure modules' own shape
assertions still execute (a failing claim marks the scenario ``ok:
false`` instead of aborting the suite).
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import os
import sys
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

__all__ = ["SCENARIOS", "run_scenario", "run_suite", "main"]


# ----------------------------------------------------------------------
# Scenario registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """One suite entry: a callable in a figure-benchmark module."""

    name: str
    module: str  # module under benchmarks/ (e.g. "bench_fig05_durability")
    func: str  # test function taking the benchmark fixture
    seed: int  # per-scenario seed (recorded; sims are deterministic)
    #: rough relative cost, used to schedule long scenarios first so a
    #: straggler does not serialize the tail of the parallel run
    weight: int = 1
    smoke: bool = False


def _registry() -> Dict[str, Scenario]:
    figure = [
        # name, module, func, weight
        ("fig05a", "bench_fig05_durability", "test_fig05a_one_segment", 8),
        ("fig05b", "bench_fig05_durability", "test_fig05b_sixteen_segments", 8),
        ("fig05c", "bench_fig05_durability", "test_fig05_pravega_no_flush_gain_is_modest", 4),
        ("fig06a", "bench_fig06_batching", "test_fig06a_one_segment", 6),
        ("fig06b", "bench_fig06_batching", "test_fig06b_kafka_more_batching_backfires", 4),
        ("fig07a", "bench_fig07_large_events", "test_fig07a_one_segment", 6),
        ("fig07b", "bench_fig07_large_events", "test_fig07b_sixteen_segments", 6),
        ("fig08a", "bench_fig08_tail_reads", "test_fig08a_one_segment", 6),
        ("fig08b", "bench_fig08_tail_reads", "test_fig08b_reads_at_16_partitions", 6),
        ("fig09", "bench_fig09_routing_keys", "test_fig09_routing_keys", 8),
        ("fig10a", "bench_fig10_parallelism", "test_fig10a_pravega_and_kafka", 10),
        ("fig10b", "bench_fig10_parallelism", "test_fig10b_pulsar_instability", 10),
        ("fig11", "bench_fig11_max_throughput", "test_fig11_max_throughput", 10),
        ("fig11b", "bench_fig11_max_throughput", "test_fig11_drive_level_overhead", 4),
        ("fig12", "bench_fig12_historical", "test_fig12_historical_reads", 6),
        ("fig13", "bench_fig13_autoscaling", "test_fig13_autoscaling", 6),
        ("table1", "bench_table1_config", "test_table1_deployment", 2),
        ("workload_diurnal", "bench_workload", "test_workload_diurnal_autoscaling", 8),
        ("workload_flash", "bench_workload", "test_workload_flash_crowd", 8),
        ("workload_slo", "bench_workload", "test_workload_multi_tenant_slo", 6),
        ("fig08c", "bench_read", "test_fig08c_tail_fanout", 4),
        ("fig12b", "bench_read", "test_fig12b_replay_coalescing", 4),
    ]
    entries: Dict[str, Scenario] = {}
    for i, (name, module, func, weight) in enumerate(figure):
        entries[name] = Scenario(name, module, func, seed=1000 + i, weight=weight)
    for i, system in enumerate(
        ("pravega", "kafka", "pulsar", "workload", "geo", "read", "shard")
    ):
        name = f"smoke_{system}"
        entries[name] = Scenario(
            name, "", f"_smoke_{system}", seed=2000 + i, weight=1, smoke=True
        )
    return entries


SCENARIOS: Dict[str, Scenario] = _registry()


# ----------------------------------------------------------------------
# Smoke scenarios: tiny in-process workloads exercising each system's
# message path end to end (used by --check and the determinism tests)
# ----------------------------------------------------------------------
def _smoke_spec():
    from repro.bench.runner import WorkloadSpec

    return WorkloadSpec(
        event_size=100,
        target_rate=5_000,
        partitions=2,
        producers=1,
        consumers=1,
        duration=1.0,
        warmup=0.25,
    )


def _run_smoke(make_adapter) -> dict:
    from repro.bench.runner import run_workload
    from repro.sim import Simulator

    sim = Simulator()
    adapter = make_adapter(sim)
    result = run_workload(sim, adapter, _smoke_spec())
    return {
        "produce_rate": result.produce_rate,
        "consume_rate": result.consume_rate,
        "write_p50_us": result.write_latency.p50 * 1e6,
        "e2e_p95_us": result.e2e_latency.p95 * 1e6,
    }


def _smoke_pravega(benchmark) -> None:
    from repro.bench.adapters import PravegaAdapter

    benchmark.extra_info.update(
        _run_smoke(lambda sim: PravegaAdapter(sim, journal_sync=True))
    )


def _smoke_kafka(benchmark) -> None:
    from repro.bench.adapters import KafkaAdapter

    benchmark.extra_info.update(
        _run_smoke(lambda sim: KafkaAdapter(sim, flush_every_message=False))
    )


def _smoke_pulsar(benchmark) -> None:
    from repro.bench.adapters import PulsarAdapter

    benchmark.extra_info.update(_run_smoke(lambda sim: PulsarAdapter(sim)))


def _smoke_workload(benchmark) -> None:
    """Two tenants (Poisson + constant) multiplexed through one Pravega
    cluster with SLO evaluation — the repro.workload path end to end."""
    from repro.bench.adapters import PravegaAdapter
    from repro.sim import Simulator
    from repro.workload import Constant, Poisson, TenantSpec, run_tenants

    sim = Simulator()
    adapter = PravegaAdapter(sim, journal_sync=True)
    tenants = [
        TenantSpec("alpha", arrival=Poisson(3_000.0), partitions=2, consumers=1, seed=11),
        TenantSpec("beta", arrival=Constant(2_000.0), partitions=1, seed=12),
    ]
    run = run_tenants(sim, adapter, tenants, duration=1.0, warmup=0.25)
    info: dict = {}
    for name, result in run.results.items():
        info[f"{name}.produce_rate"] = result.produce_rate
        info[f"{name}.availability"] = result.extra["slo.availability"]
        info[f"{name}.slo_ok"] = result.extra["slo.ok"]
    benchmark.extra_info.update(info)


def _smoke_geo(benchmark) -> None:
    """Two-region async geo deployment through a scripted region loss:
    replication, election-driven failover and the RPO/RTO oracle end to
    end (the repro.geo path)."""
    from repro.geo.scenarios import run_region_loss

    result = run_region_loss(mode="async", wan_rtt=0.02, seed=7, regions=2, steps=40)
    benchmark.extra_info.update({
        "acked": result["acked"],
        "availability": result["availability"],
        "rpo_bytes": result["rpo_bytes"],
        "rto_s": result["rto_s"],
        "promoted_region": result["promoted_region"],
        "violations": len(result["violations"]),
    })


def _smoke_read(benchmark) -> None:
    """Serving-tier read path end to end: shared tail fan-out delivery
    plus a coalescing off/on replay of an LTS-resident backlog (the
    repro.pravega read-path, serving features ON)."""
    bench_dir = str(_bench_dir())
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    import importlib

    bench_read = importlib.import_module("bench_read")
    fanout = bench_read.run_fanout(readers=8, events=8)
    off = bench_read.run_replay(
        False, readers=4, backlog_bytes=3 * 1024 * 1024, cache_bytes=2 * 1024 * 1024
    )
    on = bench_read.run_replay(
        True, readers=4, backlog_bytes=3 * 1024 * 1024, cache_bytes=2 * 1024 * 1024
    )
    benchmark.extra_info.update({
        "fanout.delivered_events": fanout["delivered_events"],
        "fanout.caught_up": fanout["caught_up"],
        "fanout.p50_ms": fanout["p50_ms"],
        "fanout.kernel_events": fanout["kernel_events"],
        "replay.off_lts_fetch_ops": off["lts_fetch_ops"],
        "replay.on_lts_fetch_ops": on["lts_fetch_ops"],
        "replay.coalesced_fetches": on["coalesced_fetches"],
        "replay.delivered_bytes": on["delivered_bytes"],
        "replay.bytes_equal": on["delivered_bytes"] == off["delivered_bytes"],
    })


def _smoke_shard(benchmark) -> None:
    """Sharded runtime end to end: a pingpong run on 1 shard and on
    ``REPRO_SHARDS`` (default 2) worker processes, asserting the
    deterministic views are identical — the shards-1-vs-N identity
    contract exercised on every --check."""
    from repro.sim.shard import ScenarioSpec, deterministic_view, run_sharded

    shards = max(2, int(os.environ.get("REPRO_SHARDS", "2") or 2))
    spec = ScenarioSpec.make("pingpong", pairs=2, rounds=150, nbytes=1024)
    single = run_sharded(spec, shards=1)
    sharded = run_sharded(spec, shards=shards)
    identical = deterministic_view(single) == deterministic_view(sharded)
    assert identical, "sharded pingpong diverged from the single-shard run"
    benchmark.extra_info.update({
        "shards": sharded["shards"],
        "identical_to_single": identical,
        "rounds_completed": sharded["metrics"]["rounds_completed"],
        "rtt_p50_us": sharded["metrics"]["rtt_p50_us"],
        "sync_rounds": sharded["sync"]["rounds"],
        "null_messages": sharded["sync"]["null_messages"],
    })


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------
class _SuiteBenchmark:
    """Stand-in for the pytest-benchmark fixture: runs the experiment
    exactly once and keeps ``extra_info`` (the headline numbers)."""

    def __init__(self) -> None:
        self.extra_info: dict = {}

    def pedantic(self, fn, rounds: int = 1, iterations: int = 1, **_: object):
        result = None
        for _round in range(max(1, rounds) * max(1, iterations)):
            result = fn()
        return result

    def __call__(self, fn, *args, **kwargs):
        return fn(*args, **kwargs)


def _bench_dir() -> Path:
    """The benchmarks/ directory of this repository checkout."""
    override = os.environ.get("REPRO_BENCH_DIR")
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / "benchmarks"


def run_scenario(name: str) -> dict:
    """Execute one scenario in this process; returns its result record.

    Results are deterministic; the ``wall_s`` / ``events_per_second``
    fields are the only timing-dependent values in the record.
    """
    scenario = SCENARIOS[name]
    from repro.sim.core import Simulator

    import random

    random.seed(scenario.seed)
    sims: List[Simulator] = []
    original_init = Simulator.__init__

    def tracking_init(self) -> None:  # noqa: ANN001 - bound to Simulator
        original_init(self)
        sims.append(self)

    record: dict = {"name": name, "seed": scenario.seed, "ok": True, "error": None}
    output = io.StringIO()
    bench = _SuiteBenchmark()
    start = time.perf_counter()
    try:
        if scenario.smoke:
            fn = globals()[scenario.func]
        else:
            bench_dir = str(_bench_dir())
            if bench_dir not in sys.path:
                sys.path.insert(0, bench_dir)
            import importlib

            module = importlib.import_module(scenario.module)
            fn = getattr(module, scenario.func)
        Simulator.__init__ = tracking_init  # type: ignore[method-assign]
        with contextlib.redirect_stdout(output):
            fn(bench)
        record["metrics"] = _jsonable(bench.extra_info)
    except AssertionError as exc:
        record["ok"] = False
        record["error"] = f"claim failed: {exc}"
        record["metrics"] = _jsonable(bench.extra_info)
        record["stdout_tail"] = output.getvalue()[-2000:]
    except Exception as exc:  # noqa: BLE001 - report, don't kill the suite
        record["ok"] = False
        record["error"] = f"{type(exc).__name__}: {exc}"
        record["traceback"] = traceback.format_exc(limit=8)
        record["metrics"] = _jsonable(bench.extra_info)
        record["stdout_tail"] = output.getvalue()[-2000:]
    finally:
        Simulator.__init__ = original_init  # type: ignore[method-assign]
    wall = time.perf_counter() - start
    events = sum(s._events_executed + s._microtasks_executed for s in sims)
    record["wall_s"] = round(wall, 3)
    record["sim_time_s"] = round(sum(s._now for s in sims), 6)
    record["simulations"] = len(sims)
    record["kernel_events"] = events
    record["events_per_second"] = round(events / wall) if wall > 0 else None
    return record


def _jsonable(info: dict) -> dict:
    clean = {}
    for key, value in info.items():
        try:
            json.dumps(value)
        except TypeError:
            value = repr(value)
        clean[key] = value
    return clean


# ----------------------------------------------------------------------
# Suite driver
# ----------------------------------------------------------------------
def run_suite(
    names: List[str],
    jobs: int = 1,
    progress: bool = True,
) -> dict:
    """Run ``names`` with ``jobs`` worker processes; returns the report."""
    for name in names:
        if name not in SCENARIOS:
            raise SystemExit(
                f"unknown scenario {name!r} (known: {', '.join(sorted(SCENARIOS))})"
            )
    # Longest-expected-first submission order: a heavy straggler started
    # last would serialize the tail of the run.
    ordered = sorted(names, key=lambda n: -SCENARIOS[n].weight)
    start = time.perf_counter()
    results: Dict[str, dict] = {}
    if jobs <= 1:
        for name in ordered:
            if progress:
                print(f"  [suite] {name} ...", flush=True)
            results[name] = run_scenario(name)
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            pending = {pool.submit(run_scenario, name): name for name in ordered}
            while pending:
                done, _ = wait(list(pending), return_when=FIRST_COMPLETED)
                for future in done:
                    name = pending.pop(future)
                    results[name] = future.result()
                    if progress:
                        rec = results[name]
                        status = "ok" if rec["ok"] else "FAIL"
                        print(
                            f"  [suite] {name}: {status} ({rec['wall_s']:.1f}s)",
                            flush=True,
                        )
    suite_wall = time.perf_counter() - start
    per_scenario = [results[name] for name in names]
    # Sum of per-scenario walls.  On a machine with >= jobs cores this
    # approximates a serial run and the ratio below is the parallel
    # speedup; on a core-bound box the workers time-slice, per-scenario
    # walls inflate by the contention factor, and the honest speedup is
    # a measured --jobs 1 wall vs a measured --jobs N wall instead.
    serial_estimate = sum(r["wall_s"] for r in per_scenario)
    # The scenario that bounds the whole run: no jobs count can push the
    # suite wall below it — shrinking it takes intra-scenario
    # parallelism (repro.sim.shard), so it is the sharding baseline.
    longest = max(per_scenario, key=lambda r: r["wall_s"]) if per_scenario else None
    return {
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "suite_wall_s": round(suite_wall, 3),
        "total_wall_s": round(serial_estimate, 3),
        "longest_scenario": (
            {"name": longest["name"], "wall_s": longest["wall_s"]} if longest else None
        ),
        "serial_wall_estimate_s": round(serial_estimate, 3),
        "parallel_speedup_vs_serial_estimate": (
            round(serial_estimate / suite_wall, 2) if suite_wall > 0 else None
        ),
        "ok": all(r["ok"] for r in per_scenario),
        "scenarios": per_scenario,
    }


def deterministic_view(report: dict) -> list:
    """The per-scenario fields that must be identical across ``--jobs``."""
    view = []
    for record in report["scenarios"]:
        view.append(
            {
                "name": record["name"],
                "seed": record["seed"],
                "ok": record["ok"],
                "error": record["error"],
                "metrics": record["metrics"],
                "sim_time_s": record["sim_time_s"],
                "simulations": record["simulations"],
                "kernel_events": record["kernel_events"],
            }
        )
    return view


def _expand_selection(spec: str) -> List[str]:
    """Expand a comma-separated ``--only``/``--skip`` value.

    Each token is an exact scenario name or a prefix (``fig10`` ->
    ``fig10a, fig10b``); unknown tokens are an error, not a silent no-op.
    """
    names: List[str] = []
    for token in (t.strip() for t in spec.split(",")):
        if not token:
            continue
        if token in SCENARIOS:
            matches = [token]
        else:
            matches = sorted(n for n in SCENARIOS if n.startswith(token))
            if not matches:
                raise SystemExit(
                    f"unknown scenario {token!r} "
                    f"(known: {', '.join(sorted(SCENARIOS))})"
                )
        names.extend(m for m in matches if m not in names)
    return names


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench suite",
        description="Run the figure benchmarks in parallel worker processes.",
    )
    parser.add_argument(
        "--jobs", type=int, default=max(1, os.cpu_count() or 1),
        help="worker processes (default: cpu count)",
    )
    parser.add_argument(
        "--only", default=None,
        help="comma-separated scenario names or prefixes (e.g. fig10 "
        "selects fig10a,fig10b; default: all figure scenarios)",
    )
    parser.add_argument(
        "--skip", default=None,
        help="comma-separated scenario names or prefixes to exclude "
        "(applied after --only)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fast smoke: run the 3 smoke scenarios serially AND with "
        "--jobs workers, verify the results are identical",
    )
    parser.add_argument("--json", default=None, help="write the report here")
    parser.add_argument(
        "--fluid", action="store_true",
        help="opt every workload into hybrid fluid/discrete mode (sets "
        "REPRO_FLUID for this process and its workers); scenarios the "
        "fluid model cannot carry fall back to discrete automatically",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="request N-way sharded execution (sets REPRO_SHARDS for this "
        "process and its workers).  Shard-native scenarios (smoke_shard, "
        "repro.sim.shard registry) split across N event-loop processes; "
        "discrete-adapter scenarios cannot shard and record a "
        "shard.refusal extra while running single-shard (default off)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    args = parser.parse_args(argv)
    if args.fluid:
        os.environ["REPRO_FLUID"] = "1"
    if args.shards is not None:
        if args.shards < 1:
            raise SystemExit(f"--shards must be >= 1, got {args.shards}")
        os.environ["REPRO_SHARDS"] = str(args.shards)

    if args.list:
        for name, scenario in SCENARIOS.items():
            kind = "smoke" if scenario.smoke else scenario.module
            print(f"  {name:12s} {kind}")
        return 0

    if args.check:
        names = [n for n, s in SCENARIOS.items() if s.smoke]
        print(f"suite --check: {len(names)} smoke scenarios, serial vs --jobs {args.jobs}")
        serial = run_suite(names, jobs=1, progress=False)
        parallel = run_suite(names, jobs=max(2, args.jobs), progress=False)
        if deterministic_view(serial) != deterministic_view(parallel):
            print("FAIL: results differ between serial and parallel runs")
            return 1
        if not serial["ok"]:
            bad = [r["name"] for r in serial["scenarios"] if not r["ok"]]
            print(f"FAIL: smoke scenarios failed: {', '.join(bad)}")
            return 1
        for record in serial["scenarios"]:
            print(
                f"  {record['name']:14s} ok  {record['kernel_events']:>9,} events"
                f"  sim {record['sim_time_s']:.2f}s"
            )
        print("suite --check: serial and parallel results identical")
        return 0

    if args.only:
        names = _expand_selection(args.only)
    else:
        names = [n for n, s in SCENARIOS.items() if not s.smoke]
    if args.skip:
        skipped = set(_expand_selection(args.skip))
        names = [n for n in names if n not in skipped]
    if not names:
        raise SystemExit("selection is empty (check --only/--skip)")
    print(f"running {len(names)} scenarios with --jobs {args.jobs}")
    report = run_suite(names, jobs=args.jobs)
    print(
        f"suite: {report['suite_wall_s']:.1f}s wall with {args.jobs} jobs "
        f"(sum of scenario walls {report['serial_wall_estimate_s']:.1f}s, "
        f"speedup {report['parallel_speedup_vs_serial_estimate']}x, "
        f"{report['cpu_count']} cpus)"
    )
    for record in report["scenarios"]:
        status = "ok " if record["ok"] else "FAIL"
        print(f"  {status} {record['name']:10s} {record['wall_s']:7.1f}s")
    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
