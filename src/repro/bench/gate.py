"""Benchmark regression gate: committed BENCH_*.json vs fresh runs.

The repo commits its performance trajectory as ``BENCH_*.json`` files
(kernel microbenchmarks, the figure suite, workload experiments, the
fluid-scale report, the capacity map, the sharded-runtime report).
Nothing guarded them: a
regression could land silently and only be noticed when a full suite
re-run happened to be eyeballed.  The gate closes that hole in three
layers, cheapest first:

1. **structure** — every committed file parses and satisfies its
   schema contract (suite scenarios all ``ok``, capacity points all
   discrete-confirmed, geo failover points violation-free with a
   measured RTO and in-bound staleness, ...), and scenarios recorded
   in more than one file agree on their deterministic fields;
2. **smoke re-runs** — a configurable subset of scenarios is re-run
   fresh and compared field by field against the committed records:
   deterministic fields (kernel events, simulated time, figure
   metrics, capacity rates) must match exactly, wall-clock fields only
   within a generous ratio (different machines are expected to differ);
3. **structured diff** — every violation is a :class:`Drift` with the
   file, dotted path, committed and fresh values, the tolerance that
   applied and the measured drift, so a gate failure states precisely
   what rotted, by how much, and against which bound.

Per-metric tolerances are fnmatch patterns over the dotted path
(``--tol 'metrics.*_ms=0.02'``); the first matching pattern wins, so
overrides simply prepend.  Wired into ``make gate`` / ``make check``
and tier-1 via the ``gate`` pytest marker (tests/test_bench_gate.py).

Usage::

    python -m repro.bench gate                       # default smoke set
    python -m repro.bench gate --smoke none          # structure only
    python -m repro.bench gate --smoke suite:fig05c+table1,capacity:kafka/mixed
    python -m repro.bench gate --tol 'wall_s=20' --json gate_report.json
"""

from __future__ import annotations

import argparse
import fnmatch
import glob
import json
import math
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Drift",
    "GateReport",
    "DEFAULT_SMOKE",
    "WALL_RATIO",
    "compare",
    "structure_checks",
    "load_bench_files",
    "run_gate",
    "main",
]

# Fields that measure the machine, not the simulation: compared as a
# ratio with a generous allowance instead of exactly.
WALL_PATTERNS = (
    "*wall_s*",
    "*wall_seconds*",
    "*events_per_second*",
    "*ns_per_event*",
    "*probe_wall*",
    "*speedup*",
    "*suite_wall*",
    "*serial_wall*",
)
#: fresh wall time may be up to this factor off the committed one in
#: either direction before it counts as drift
WALL_RATIO = 10.0
#: wall values under this (seconds) are noise; ratio checks skip them
WALL_FLOOR = 0.05

DEFAULT_SMOKE = "kernel:timeout_churn+cancel_storm,suite:table1+fig05c,workload:workload_slo,capacity:pravega/uniform"


@dataclass(frozen=True)
class Drift:
    """One violated bound: what rotted, by how much, against what."""

    file: str
    path: str
    #: "structure" | "exact" | "metric" | "wall" | "missing" | "extra"
    kind: str
    committed: object
    fresh: object
    tolerance: float
    drift: float
    message: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "file": self.file,
            "path": self.path,
            "kind": self.kind,
            "committed": self.committed,
            "fresh": self.fresh,
            "tolerance": self.tolerance,
            "drift": round(self.drift, 6) if isinstance(self.drift, float) else self.drift,
            "message": self.message,
        }


@dataclass
class GateReport:
    ok: bool
    drifts: List[Drift]
    files: List[str]
    smoke: List[Dict[str, object]]
    wall_s: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "files": self.files,
            "smoke": self.smoke,
            "drift_count": len(self.drifts),
            "drifts": [d.as_dict() for d in self.drifts],
            "wall_s": round(self.wall_s, 3),
        }


# ----------------------------------------------------------------------
# Tolerance resolution
# ----------------------------------------------------------------------
def _is_wall(path: str) -> bool:
    return any(fnmatch.fnmatch(path, pat) for pat in WALL_PATTERNS)


def resolve_tolerance(
    path: str, overrides: Sequence[Tuple[str, float]] = ()
) -> Tuple[str, float]:
    """(kind, tolerance) for a dotted path; first matching override wins.

    Override values are relative tolerances for metric fields and ratio
    factors for wall fields (a field is a wall field by pattern, or
    when its override value is > 1).
    """
    for pattern, tol in overrides:
        if fnmatch.fnmatch(path, pattern) or fnmatch.fnmatch(
            path.rsplit(".", 1)[-1], pattern
        ):
            if _is_wall(path) or tol > 1.0:
                return "wall", tol
            return "metric", tol
    if _is_wall(path):
        return "wall", WALL_RATIO
    return "exact", 0.0


# ----------------------------------------------------------------------
# Structured comparison
# ----------------------------------------------------------------------
def _numbers(a: object, b: object) -> bool:
    return isinstance(a, (int, float)) and isinstance(b, (int, float)) and not (
        isinstance(a, bool) or isinstance(b, bool)
    )


def compare(
    file: str,
    path: str,
    committed: object,
    fresh: object,
    overrides: Sequence[Tuple[str, float]] = (),
) -> List[Drift]:
    """Recursive structured diff of a committed record vs a fresh one."""
    drifts: List[Drift] = []
    if isinstance(committed, dict) and isinstance(fresh, dict):
        for key in committed:
            sub = f"{path}.{key}" if path else str(key)
            if key not in fresh:
                drifts.append(Drift(
                    file, sub, "missing", committed[key], None, 0.0, 1.0,
                    "field present in committed record but absent fresh",
                ))
                continue
            drifts.extend(compare(file, sub, committed[key], fresh[key], overrides))
        for key in fresh:
            if key not in committed:
                sub = f"{path}.{key}" if path else str(key)
                drifts.append(Drift(
                    file, sub, "extra", None, fresh[key], 0.0, 1.0,
                    "fresh run produced a field the committed record lacks",
                ))
        return drifts
    if isinstance(committed, list) and isinstance(fresh, list):
        if len(committed) != len(fresh):
            drifts.append(Drift(
                file, path, "structure", len(committed), len(fresh), 0.0, 1.0,
                f"list length {len(committed)} -> {len(fresh)}",
            ))
            return drifts
        for i, (c, f) in enumerate(zip(committed, fresh)):
            drifts.extend(compare(file, f"{path}[{i}]", c, f, overrides))
        return drifts
    if _numbers(committed, fresh):
        kind, tol = resolve_tolerance(path, overrides)
        c, f = float(committed), float(fresh)
        if kind == "wall":
            if max(abs(c), abs(f)) <= WALL_FLOOR:
                return drifts
            lo = max(min(abs(c), abs(f)), WALL_FLOOR)
            ratio = max(abs(c), abs(f)) / lo
            if ratio > tol:
                drifts.append(Drift(
                    file, path, "wall", committed, fresh, tol, ratio,
                    f"wall-clock ratio {ratio:.2f}x exceeds the {tol:.0f}x allowance",
                ))
            return drifts
        if math.isnan(c) and math.isnan(f):
            return drifts
        rel = abs(f - c) / max(abs(c), 1e-12)
        if rel > tol:
            drifts.append(Drift(
                file, path, kind, committed, fresh, tol, rel,
                (
                    f"deterministic field changed ({committed} -> {fresh})"
                    if tol == 0.0
                    else f"relative drift {rel:.4g} exceeds tolerance {tol:.4g}"
                ),
            ))
        return drifts
    if committed != fresh:
        drifts.append(Drift(
            file, path, "exact", committed, fresh, 0.0, 1.0,
            f"value changed ({committed!r} -> {fresh!r})",
        ))
    return drifts


# ----------------------------------------------------------------------
# Committed-file structure contracts
# ----------------------------------------------------------------------
def load_bench_files(root: "str | Path") -> Dict[str, dict]:
    files: Dict[str, dict] = {}
    for path in sorted(glob.glob(os.path.join(str(root), "BENCH_*.json"))):
        with open(path) as fh:
            files[os.path.basename(path)] = json.load(fh)
    return files


def _suite_scenarios(report: dict) -> List[dict]:
    """Per-scenario records of either suite-report layout (flat, or the
    jobs_1/jobs_4 double run of BENCH_suite.json)."""
    if "runs" in report:
        return list(report["runs"].get("jobs_1", {}).get("scenarios", []))
    return list(report.get("scenarios", []))


_SUITE_DET_FIELDS = ("ok", "error", "metrics", "sim_time_s", "simulations", "kernel_events", "seed")


def structure_checks(files: Dict[str, dict], min_capacity_points: int = 6) -> List[Drift]:
    """Schema/invariant checks over the committed files themselves."""
    drifts: List[Drift] = []

    def bad(file: str, path: str, got: object, want: str) -> None:
        drifts.append(Drift(
            file, path, "structure", want, got, 0.0, 1.0,
            f"expected {want}, got {got!r}",
        ))

    kernel = files.get("BENCH_kernel.json")
    if kernel is not None:
        scenarios = kernel.get("scenarios") or {}
        if not scenarios:
            bad("BENCH_kernel.json", "scenarios", scenarios, "non-empty scenario dict")
        for name, record in scenarios.items():
            if "events" not in record or "stats" not in record:
                bad("BENCH_kernel.json", f"scenarios.{name}", sorted(record),
                    "record with events + stats")

    for fname in ("BENCH_suite.json", "BENCH_workload.json"):
        report = files.get(fname)
        if report is None:
            continue
        scenarios = _suite_scenarios(report)
        if not scenarios:
            bad(fname, "scenarios", [], "non-empty scenario list")
        for record in scenarios:
            if not record.get("ok", False):
                bad(fname, f"scenarios[{record.get('name')}].ok",
                    record.get("ok"), "ok: true")
        if fname == "BENCH_suite.json" and not report.get(
            "results_identical_across_jobs", True
        ):
            bad(fname, "results_identical_across_jobs", False, "true")

    scale = files.get("BENCH_scale.json")
    if scale is not None and not (scale.get("scenarios") or {}):
        bad("BENCH_scale.json", "scenarios", {}, "non-empty scenario dict")

    capacity = files.get("BENCH_capacity.json")
    if capacity is not None:
        points = capacity.get("points") or []
        if len(points) < min_capacity_points:
            bad("BENCH_capacity.json", "points", len(points),
                f">= {min_capacity_points} capacity points")
        for point in points:
            label = f"{point.get('system')}/{point.get('mix')}"
            if not point.get("confirmed", False):
                bad("BENCH_capacity.json", f"points[{label}].confirmed",
                    point.get("confirmed"), "discrete-confirmed boundary")
            if not point.get("converged", False):
                bad("BENCH_capacity.json", f"points[{label}].converged",
                    point.get("converged"), "converged bracket")

    geo = files.get("BENCH_geo.json")
    if geo is not None:
        points = geo.get("points") or []
        if len(points) < 6:
            bad("BENCH_geo.json", "points", len(points),
                ">= 6 geo points (2 modes x 3 RTT tiers)")
        for point in points:
            label = f"{point.get('mode')}/{point.get('tier')}"
            for key in ("rpo_bytes", "rpo_events", "rto_s", "availability"):
                if key not in point:
                    bad("BENCH_geo.json", f"points[{label}].{key}",
                        sorted(point), f"point with a {key} field")
            if point.get("violations", 0):
                bad("BENCH_geo.json", f"points[{label}].violations",
                    point.get("violations"), "zero oracle violations")
            if point.get("rto_s") is None:
                bad("BENCH_geo.json", f"points[{label}].rto_s",
                    None, "a measured failover RTO")
            if point.get("mode") == "global_strong" and (
                point.get("rpo_bytes") or point.get("rpo_events")
            ):
                bad("BENCH_geo.json", f"points[{label}].rpo_bytes",
                    point.get("rpo_bytes"), "RPO 0 in global-strong mode")
            if point.get("mode") == "async":
                lag = point.get("max_lag_at_admission", 0)
                bound = point.get(
                    "staleness_bound_bytes",
                    geo.get("staleness_bound_bytes", 0),
                )
                if lag > bound:
                    bad("BENCH_geo.json",
                        f"points[{label}].max_lag_at_admission", lag,
                        f"admission lag within the {bound}B staleness bound")

    read = files.get("BENCH_read.json")
    if read is not None:
        points = (read.get("fanout") or {}).get("points") or []
        if not any(p.get("readers", 0) >= 1000 for p in points):
            bad("BENCH_read.json", "fanout.points",
                [p.get("readers") for p in points],
                "a fan-out point with >= 1000 concurrent readers")
        for point in points:
            label = f"fanout.points[{point.get('readers')}]"
            if not point.get("caught_up", False):
                bad("BENCH_read.json", f"{label}.caught_up",
                    point.get("caught_up"), "all readers caught up")
            for key in ("kernel_events", "sim_time_s"):
                if key not in point:
                    bad("BENCH_read.json", f"{label}.{key}",
                        sorted(point), f"point with a {key} field")
        replay = read.get("replay") or {}
        off, on = replay.get("off"), replay.get("on")
        if off is None or on is None:
            bad("BENCH_read.json", "replay", sorted(replay),
                "off + on coalescing records")
        else:
            if on.get("lts_fetch_ops", 0) > off.get("lts_fetch_ops", 0):
                bad("BENCH_read.json", "replay.on.lts_fetch_ops",
                    on.get("lts_fetch_ops"),
                    f"<= uncoalesced ops ({off.get('lts_fetch_ops')!r})")
            if on.get("delivered_bytes") != off.get("delivered_bytes"):
                bad("BENCH_read.json", "replay.on.delivered_bytes",
                    on.get("delivered_bytes"),
                    f"byte parity with off ({off.get('delivered_bytes')!r})")
            for mode, record in (("off", off), ("on", on)):
                for key in ("kernel_events", "sim_time_s"):
                    if key not in record:
                        bad("BENCH_read.json", f"replay.{mode}.{key}",
                            sorted(record), f"record with a {key} field")
        for name, policy in (read.get("policies") or {}).items():
            for key in ("hit_rate", "hot_hit_rate"):
                rate = policy.get(key)
                if not isinstance(rate, (int, float)) or not 0.0 <= rate <= 1.0:
                    bad("BENCH_read.json", f"policies[{name}].{key}",
                        rate, "a hit rate in [0, 1]")
        if "seed" not in read:
            bad("BENCH_read.json", "seed", sorted(read), "a recorded seed")

    shard = files.get("BENCH_shard.json")
    if shard is not None:
        scenarios = shard.get("scenarios") or []
        if len(scenarios) < 2:
            bad("BENCH_shard.json", "scenarios", len(scenarios),
                ">= 2 shard scenarios (incl. a fig10a-class heavy one)")
        for scenario in scenarios:
            label = f"scenarios[{scenario.get('name')}]"
            if not scenario.get("identical_across_shards", False):
                bad("BENCH_shard.json", f"{label}.identical_across_shards",
                    scenario.get("identical_across_shards"),
                    "results identical across all shard counts")
            runs = scenario.get("runs") or []
            counts = sorted({r.get("shards") for r in runs})
            if len(counts) < 3:
                bad("BENCH_shard.json", f"{label}.runs", counts,
                    ">= 3 distinct shard counts")
            elif 1 not in counts:
                bad("BENCH_shard.json", f"{label}.runs", counts,
                    "a shards=1 baseline run")
            for run in runs:
                rlabel = f"{label}.runs[shards={run.get('shards')}]"
                sync = run.get("sync")
                if not isinstance(sync, dict):
                    bad("BENCH_shard.json", f"{rlabel}.sync",
                        sync, "a sync-overhead record")
                    continue
                for key in (
                    "rounds", "null_messages", "lookahead_s",
                    "avg_window_s", "lookahead_utilization", "ipc_wall_s",
                ):
                    if key not in sync:
                        bad("BENCH_shard.json", f"{rlabel}.sync.{key}",
                            sorted(sync), f"a {key} field")
                if run.get("shards", 0) > 1:
                    if not sync.get("lookahead_s", 0) > 0:
                        bad("BENCH_shard.json", f"{rlabel}.sync.lookahead_s",
                            sync.get("lookahead_s"),
                            "a strictly positive conservative lookahead")
                    if not sync.get("rounds", 0) > 0:
                        bad("BENCH_shard.json", f"{rlabel}.sync.rounds",
                            sync.get("rounds"), "> 0 synchronization rounds")

    # Cross-file agreement: a scenario recorded in two files must agree
    # on its deterministic fields (wall fields are per-run).
    suite = files.get("BENCH_suite.json")
    workload = files.get("BENCH_workload.json")
    if suite is not None and workload is not None:
        by_name = {r["name"]: r for r in _suite_scenarios(suite)}
        for record in _suite_scenarios(workload):
            twin = by_name.get(record["name"])
            if twin is None:
                continue
            for key in _SUITE_DET_FIELDS:
                if twin.get(key) != record.get(key):
                    bad("BENCH_workload.json",
                        f"scenarios[{record['name']}].{key}",
                        record.get(key),
                        f"agreement with BENCH_suite.json ({twin.get(key)!r})")
    return drifts


# ----------------------------------------------------------------------
# Smoke re-runs
# ----------------------------------------------------------------------
def _parse_smoke(spec: str) -> List[Tuple[str, List[str]]]:
    """``kernel:a+b,suite:c`` -> [("kernel", [a, b]), ("suite", [c])]."""
    checks: List[Tuple[str, List[str]]] = []
    for token in (t.strip() for t in spec.split(",")):
        if not token or token == "none":
            continue
        family, _, rest = token.partition(":")
        names = [n for n in rest.split("+") if n]
        checks.append((family, names))
    return checks


def _smoke_kernel(
    names: List[str], files: Dict[str, dict], overrides
) -> Tuple[List[Drift], Dict[str, object]]:
    import importlib

    from repro.bench.suite import _bench_dir

    committed = files.get("BENCH_kernel.json", {}).get("scenarios", {})
    bench_dir = str(_bench_dir())
    import sys

    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    kernel = importlib.import_module("bench_kernel")
    rows = {row[0]: row for row in kernel.SCENARIOS}
    drifts: List[Drift] = []
    ran: List[str] = []
    for name in names or ["timeout_churn"]:
        if name not in rows:
            drifts.append(Drift(
                "BENCH_kernel.json", f"scenarios.{name}", "structure",
                f"one of {sorted(rows)}", name, 0.0, 1.0,
                f"unknown kernel scenario {name!r}",
            ))
            continue
        if name not in committed:
            drifts.append(Drift(
                "BENCH_kernel.json", f"scenarios.{name}", "missing",
                "committed baseline", None, 0.0, 1.0,
                f"no committed baseline for kernel scenario {name!r}",
            ))
            continue
        _, full, _smoke_fn, _budget = rows[name]
        fresh = kernel.run_scenario(name, full, repeats=1)
        drifts.extend(compare(
            "BENCH_kernel.json", f"scenarios.{name}", committed[name], fresh,
            overrides,
        ))
        ran.append(name)
    return drifts, {"check": "kernel", "scenarios": ran}


def _smoke_suite_family(
    family: str, names: List[str], files: Dict[str, dict], overrides
) -> Tuple[List[Drift], Dict[str, object]]:
    from repro.bench.suite import SCENARIOS, run_scenario

    fname = "BENCH_suite.json" if family == "suite" else "BENCH_workload.json"
    committed = {r["name"]: r for r in _suite_scenarios(files.get(fname, {}))}
    drifts: List[Drift] = []
    ran: List[str] = []
    for name in names or ["table1"]:
        if name not in SCENARIOS:
            drifts.append(Drift(
                fname, f"scenarios[{name}]", "structure",
                "a registered suite scenario", name, 0.0, 1.0,
                f"unknown suite scenario {name!r}",
            ))
            continue
        if name not in committed:
            drifts.append(Drift(
                fname, f"scenarios[{name}]", "missing",
                "committed baseline", None, 0.0, 1.0,
                f"no committed baseline for scenario {name!r} in {fname}",
            ))
            continue
        fresh = run_scenario(name)
        drifts.extend(compare(
            fname, f"scenarios[{name}]", committed[name], fresh, overrides
        ))
        ran.append(name)
    return drifts, {"check": family, "scenarios": ran}


def _smoke_capacity(
    names: List[str], files: Dict[str, dict], overrides
) -> Tuple[List[Drift], Dict[str, object]]:
    from repro.capacity import MIXES, CapacityPlanner, PlannerConfig

    fname = "BENCH_capacity.json"
    report = files.get(fname, {})
    committed = {
        f"{p.get('system')}/{p.get('mix')}": p for p in report.get("points", [])
    }
    seed = int(report.get("seed", 0))
    drifts: List[Drift] = []
    ran: List[str] = []
    for name in names or ["pravega/uniform"]:
        system, _, mix = name.partition("/")
        if name not in committed:
            drifts.append(Drift(
                fname, f"points[{name}]", "missing",
                "committed capacity point", None, 0.0, 1.0,
                f"no committed capacity point {name!r}",
            ))
            continue
        if mix not in MIXES:
            drifts.append(Drift(
                fname, f"points[{name}]", "structure",
                f"mix in {sorted(MIXES)}", mix, 0.0, 1.0,
                f"unknown tenant mix {mix!r}",
            ))
            continue
        planner = CapacityPlanner(system, MIXES[mix], PlannerConfig(seed=seed))
        fresh = planner.plan().record(include_wall=False)
        baseline = {k: v for k, v in committed[name].items() if k != "wall_s"}
        drifts.extend(compare(fname, f"points[{name}]", baseline, fresh, overrides))
        ran.append(name)
    return drifts, {"check": "capacity", "points": ran}


_SMOKE_FAMILIES = {
    "kernel": _smoke_kernel,
    "suite": lambda names, files, ov: _smoke_suite_family("suite", names, files, ov),
    "workload": lambda names, files, ov: _smoke_suite_family("workload", names, files, ov),
    "capacity": _smoke_capacity,
}


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run_gate(
    root: "str | Path" = ".",
    smoke: str = DEFAULT_SMOKE,
    overrides: Sequence[Tuple[str, float]] = (),
    min_capacity_points: int = 6,
) -> GateReport:
    start = time.perf_counter()
    files = load_bench_files(root)
    drifts = structure_checks(files, min_capacity_points=min_capacity_points)
    smoke_log: List[Dict[str, object]] = []
    for family, names in _parse_smoke(smoke):
        runner = _SMOKE_FAMILIES.get(family)
        if runner is None:
            drifts.append(Drift(
                "(gate)", f"smoke.{family}", "structure",
                f"one of {sorted(_SMOKE_FAMILIES)}", family, 0.0, 1.0,
                f"unknown smoke family {family!r}",
            ))
            continue
        t0 = time.perf_counter()
        family_drifts, log = runner(names, files, overrides)
        log["wall_s"] = round(time.perf_counter() - t0, 3)
        log["drifts"] = len(family_drifts)
        drifts.extend(family_drifts)
        smoke_log.append(log)
    return GateReport(
        ok=not drifts,
        drifts=drifts,
        files=sorted(files),
        smoke=smoke_log,
        wall_s=time.perf_counter() - start,
    )


def record_verdict(root: "str | Path", report: GateReport) -> Optional[str]:
    """Stamp the gate verdict into BENCH_capacity.json metadata."""
    path = os.path.join(str(root), "BENCH_capacity.json")
    if not os.path.exists(path):
        return None
    with open(path) as fh:
        capacity = json.load(fh)
    capacity["gate"] = {
        "ok": report.ok,
        "files": report.files,
        "smoke": report.smoke,
        "drift_count": len(report.drifts),
    }
    with open(path, "w") as fh:
        json.dump(capacity, fh, indent=2)
        fh.write("\n")
    return path


def _parse_tolerances(specs: List[str]) -> List[Tuple[str, float]]:
    overrides: List[Tuple[str, float]] = []
    for spec in specs:
        pattern, sep, value = spec.partition("=")
        if not sep:
            raise SystemExit(f"--tol wants PATTERN=VALUE, got {spec!r}")
        overrides.append((pattern, float(value)))
    return overrides


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench gate",
        description="Compare fresh benchmark runs against the committed "
        "BENCH_*.json trajectory; fail with a structured diff on drift.",
    )
    parser.add_argument(
        "--root", default=".", help="repo root holding the BENCH_*.json files"
    )
    parser.add_argument(
        "--smoke", default=DEFAULT_SMOKE,
        help="comma-separated re-run subset, family[:name+name...] with "
        f"families {sorted(_SMOKE_FAMILIES)}; 'none' disables re-runs "
        f"(default: {DEFAULT_SMOKE})",
    )
    parser.add_argument(
        "--tol", action="append", default=[], metavar="PATTERN=VALUE",
        help="per-metric tolerance override (fnmatch over the dotted "
        "path; relative tolerance, or a ratio factor for wall fields); "
        "repeatable, first match wins",
    )
    parser.add_argument(
        "--record", action="store_true",
        help="write the verdict into BENCH_capacity.json metadata",
    )
    parser.add_argument("--json", default=None, help="write the full report here")
    args = parser.parse_args(argv)

    report = run_gate(
        args.root, smoke=args.smoke, overrides=_parse_tolerances(args.tol)
    )
    for entry in report.smoke:
        names = entry.get("scenarios") or entry.get("points") or []
        print(
            f"  [gate] {entry['check']}: {', '.join(names) or '(none)'} "
            f"({entry['wall_s']}s, {entry['drifts']} drifts)"
        )
    if report.drifts:
        print(f"gate: FAIL — {len(report.drifts)} drifts across {len(report.files)} files")
        for drift in report.drifts:
            print(f"  {drift.file} :: {drift.path}")
            print(f"    [{drift.kind}] {drift.message}")
            if drift.kind != "structure":
                print(f"    committed={drift.committed!r} fresh={drift.fresh!r} "
                      f"tol={drift.tolerance} drift={drift.drift:.4g}")
    else:
        print(
            f"gate: ok — {len(report.files)} committed files, "
            f"{len(report.smoke)} smoke checks, {report.wall_s:.1f}s"
        )
    if args.record:
        where = record_verdict(args.root, report)
        if where:
            print(f"gate verdict recorded in {where}")
    if args.json:
        Path(args.json).write_text(json.dumps(report.as_dict(), indent=2) + "\n")
    return 0 if report.ok else 1
