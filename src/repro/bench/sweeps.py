"""Sweep helpers: latency-vs-throughput curves and max-throughput probes.

Every sweep point runs on a fresh simulator and a cold cluster, so no
state leaks between configurations (matching the paper's methodology of
independent benchmark runs).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterable, List

from repro.sim.core import Simulator
from repro.bench.results import BenchResult
from repro.bench.runner import WorkloadSpec, run_workload

__all__ = ["sweep_rates", "find_max_throughput"]

AdapterFactory = Callable[[Simulator], object]


def sweep_rates(
    make_adapter: AdapterFactory,
    spec: WorkloadSpec,
    rates: Iterable[float],
    stop_at_saturation: bool = True,
) -> List[BenchResult]:
    """Run the workload at each target rate (fresh cluster per point)."""
    if spec.arrival is not None:
        raise ValueError(
            "sweep_rates varies constant target rates; spec.arrival must "
            "be None (use run_workload/run_tenants for shaped traffic)"
        )
    results: List[BenchResult] = []
    for rate in rates:
        sim = Simulator()
        adapter = make_adapter(sim)
        point = run_workload(sim, adapter, replace(spec, target_rate=rate))
        results.append(point)
        if stop_at_saturation and (point.saturated or point.crashed):
            break
    return results


def find_max_throughput(
    make_adapter: AdapterFactory,
    spec: WorkloadSpec,
    start_rate: float,
    growth: float = 2.0,
    refine_steps: int = 2,
    max_rate: float = 1e9,
) -> BenchResult:
    """Geometric ramp until saturation, then refine between the last
    sustained and the first saturated rate.  Returns the best point."""
    if spec.arrival is not None:
        # The probe owns the offered rate; a time-varying arrival process
        # would silently override every probed target_rate.
        raise ValueError(
            "find_max_throughput probes constant rates; spec.arrival must "
            "be None (use run_workload/run_tenants for shaped traffic)"
        )
    best: BenchResult | None = None
    rate = start_rate
    last_good = 0.0
    first_bad = None
    while rate <= max_rate:
        sim = Simulator()
        adapter = make_adapter(sim)
        point = run_workload(sim, adapter, replace(spec, target_rate=rate))
        if best is None or point.produce_rate > best.produce_rate:
            best = point
        if point.saturated or point.crashed:
            first_bad = rate
            break
        last_good = rate
        rate *= growth
    if first_bad is not None and last_good > 0:
        low, high = last_good, first_bad
        for _ in range(refine_steps):
            mid = (low + high) / 2.0
            sim = Simulator()
            adapter = make_adapter(sim)
            point = run_workload(sim, adapter, replace(spec, target_rate=mid))
            if best is None or point.produce_rate > best.produce_rate:
                best = point
            if point.saturated or point.crashed:
                high = mid
            else:
                low = mid
    assert best is not None
    return best
