"""repro — a reproduction of "Pravega: A Tiered Storage System for Data
Streams" (Middleware '23).

The package implements Pravega's full design — controller, segment stores,
segment containers (durable log, block cache, read index, storage writer),
event writers/readers with reader groups and stream auto-scaling — plus the
substrates it depends on (a Zookeeper-like coordination service, a
Bookkeeper-like replicated WAL, long-term storage backends) and the two
baseline systems of the paper's evaluation (Kafka-like and Pulsar-like
messaging systems).  Everything runs on a deterministic discrete-event
simulation of the paper's AWS testbed; see DESIGN.md for the substitution
rationale.
"""

__version__ = "1.0.0"
