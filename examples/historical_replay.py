"""Historical replay: unbounded retention through tiered storage (§4.3).

A clickstream is ingested for a while; the segment stores asynchronously
move data to long-term storage (EFS model) and truncate the WAL.  A new
analytics job then joins and replays the stream *from the beginning* —
reads are served transparently from LTS with parallel chunk fetches
(Fig. 12's mechanism), without the reader knowing where the bytes live.

Run with:  python examples/historical_replay.py
"""

from repro.pravega import (
    PravegaCluster,
    PravegaClusterConfig,
    ScalingPolicy,
    StreamConfiguration,
)
from repro.pravega.client.reader import ReaderConfig
from repro.sim import Simulator

EVENT_SIZE = 2_000
EVENTS = 40_000  # ~80 MB of clickstream
SEGMENTS = 8


def main() -> None:
    sim = Simulator()
    # Small block caches so the clickstream history does not fit in
    # memory — exactly the regime tiered storage exists for — and small
    # WAL ledgers with frequent checkpoints so truncation is visible.
    from repro.pravega.container import CacheSpec, ContainerConfig, DurableLogConfig
    from repro.pravega.segment_store import SegmentStoreConfig

    store_config = SegmentStoreConfig(
        container=ContainerConfig(
            cache=CacheSpec(max_buffers=4),  # 8 MB per container
            durable_log=DurableLogConfig(ledger_rollover_bytes=4_000_000),
            checkpoint_interval_time=1.0,
        )
    )
    cluster = PravegaCluster.build(
        sim, PravegaClusterConfig(lts_kind="efs", store=store_config)
    )
    sim.run_until_complete(cluster.start())
    controller = cluster.controller_client("ingest")
    sim.run_until_complete(controller.create_scope("web"))
    sim.run_until_complete(
        controller.create_stream(
            "web", "clicks",
            StreamConfiguration(scaling=ScalingPolicy.fixed(SEGMENTS)),
        )
    )

    # Phase 1: ingest at ~20 MB/s.
    writer = cluster.create_writer("ingest", "web", "clicks")

    def ingest():
        sent = 0
        while sent < EVENTS:
            yield sim.timeout(0.01)
            batch = min(100, EVENTS - sent)
            writer.write_synthetic_events(batch, EVENT_SIZE)
            sent += batch

    sim.run_until_complete(sim.process(ingest()), timeout=120)
    sim.run_until_complete(writer.flush(), timeout=120)
    ingest_done = sim.now
    print(f"[{ingest_done:6.2f} s] ingested {EVENTS} events "
          f"({EVENTS * EVENT_SIZE / 1e6:.0f} MB)")

    # Let tiering finish, then show where the data lives.
    sim.run(until=sim.now + 3.0)
    lts = cluster.lts
    print(f"[{sim.now:6.2f} s] LTS now holds {lts.total_bytes() / 1e6:.0f} MB "
          f"in {len(lts.list_chunks())} chunks")
    wal_bytes = sum(
        b.stored_bytes() for b in cluster.bk_cluster.bookies.values()
    )
    print(f"[{sim.now:6.2f} s] WAL retains only {wal_bytes / 1e6:.1f} MB across "
          f"3 replicas (ledgers below the flushed+checkpointed point were "
          f"deleted — cost-effective retention)")
    assert wal_bytes < 3 * 0.5 * EVENTS * EVENT_SIZE, "WAL should be truncated"

    # Phase 2: a late-joining analytics job replays from the head.
    group = sim.run_until_complete(
        cluster.create_reader_group("analytics", "replay", "web", "clicks")
    )
    readers = []
    for i in range(4):
        reader = cluster.create_reader(
            "analytics", f"job-{i}", group, ReaderConfig(fixed_event_size=EVENT_SIZE)
        )
        sim.run_until_complete(reader.join())
        readers.append(reader)

    replay_start = sim.now
    total = [0]

    def replay(reader):
        while total[0] < EVENTS:
            batch = yield reader.read_next()
            total[0] += batch.event_count

    procs = [sim.process(replay(r)) for r in readers]
    while total[0] < EVENTS:
        sim.run(until=sim.now + 0.25)
    replay_seconds = sim.now - replay_start
    replay_rate = EVENTS * EVENT_SIZE / replay_seconds
    print(
        f"[{sim.now:6.2f} s] replayed {total[0]} events in "
        f"{replay_seconds:.2f} s = {replay_rate / 1e6:.0f} MB/s "
        f"(historical reads from LTS, parallel chunk fetches)"
    )
    read_from_lts = lts.bytes_read
    print(f"          {read_from_lts / 1e6:.0f} MB were fetched from LTS")
    assert read_from_lts > 0.5 * EVENTS * EVENT_SIZE


if __name__ == "__main__":
    main()
