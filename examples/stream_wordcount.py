"""A mini stream-processing pipeline over the Pravega API.

The paper positions Pravega as "a storage substrate for stream
processing engines" (§6): engines like Flink read with reader groups and
keep their own state.  This example builds the classic windowed word
count as two stages:

  ingestion  -> "sentences" stream (4 segments, keyed by source)
  processing -> a reader group with 2 parallel workers counting words,
                checkpointing counts into a Pravega key-value table
                (exactly the self-hosted-state pattern the controller
                itself uses for stream metadata)

Run with:  python examples/stream_wordcount.py
"""

import random

from repro.pravega import (
    PravegaCluster,
    PravegaClusterConfig,
    ScalingPolicy,
    StreamConfiguration,
)
from repro.sim import Simulator, all_of

SENTENCES = [
    "streams are unbounded sequences of bytes",
    "segments are shards of a stream",
    "tiered storage keeps streams cost effective",
    "reader groups share segments without overlap",
    "durability comes from the replicated journal",
]


def main() -> None:
    sim = Simulator()
    cluster = PravegaCluster.build(sim, PravegaClusterConfig(lts_kind="efs"))
    sim.run_until_complete(cluster.start())
    controller = cluster.controller_client("pipeline")
    sim.run_until_complete(controller.create_scope("nlp"))
    sim.run_until_complete(
        controller.create_stream(
            "nlp", "sentences",
            StreamConfiguration(scaling=ScalingPolicy.fixed(4)),
        )
    )

    # Stage 1: three sources write sentences, keyed by source id.
    writer = cluster.create_writer("pipeline", "nlp", "sentences")
    rng = random.Random(42)
    total_sentences = 120
    for i in range(total_sentences):
        source = f"source-{i % 3}"
        writer.write_event(rng.choice(SENTENCES).encode(), routing_key=source)
    sim.run_until_complete(writer.flush())
    print(f"[{sim.now * 1e3:7.1f} ms] ingested {total_sentences} sentences")

    # Stage 2: a processing job = reader group + state table.
    group = sim.run_until_complete(
        cluster.create_reader_group("pipeline", "wordcount", "nlp", "sentences")
    )
    counts_table = sim.run_until_complete(
        cluster.create_key_value_table("pipeline", "nlp", "wordcounts")
    )
    processed = [0]

    def worker(worker_id: str):
        reader = cluster.create_reader("pipeline", worker_id, group)
        yield reader.join()
        local_counts = {}
        while processed[0] < total_sentences:
            batch = yield reader.read_next()
            for sentence in batch.events:
                processed[0] += 1
                for word in sentence.decode().split():
                    local_counts[word] = local_counts.get(word, 0) + 1
            # Checkpoint this worker's counts with optimistic CAS merges.
            for word, count in local_counts.items():
                while True:
                    entry = yield counts_table.get(f"{worker_id}/{word}")
                    version = entry.version if entry else -1
                    try:
                        yield counts_table.put(
                            f"{worker_id}/{word}", count, expected_version=version
                        )
                        break
                    except Exception:
                        continue

    workers = [sim.process(worker(f"worker-{i}")) for i in range(2)]
    while processed[0] < total_sentences:
        sim.run(until=sim.now + 0.05)
    print(f"[{sim.now * 1e3:7.1f} ms] processed {processed[0]} sentences "
          f"with 2 parallel workers (disjoint segment sets)")

    # Merge the per-worker checkpoints and report the top words.
    keys = sim.run_until_complete(counts_table.keys())
    merged = {}
    for key in keys:
        entry = sim.run_until_complete(counts_table.get(key))
        word = key.split("/", 1)[1]
        merged[word] = merged.get(word, 0) + entry.value
    top = sorted(merged.items(), key=lambda kv: -kv[1])[:5]
    print("top words (from the durable state table):")
    for word, count in top:
        print(f"    {word:12s} {count}")
    assert sum(merged.values()) > 0
    assert merged["streams"] >= 1


if __name__ == "__main__":
    main()
