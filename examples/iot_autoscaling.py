"""IoT telemetry with stream auto-scaling (the paper's §3.1/§5.8 feature).

An IoT fleet's ingestion rate ramps up (morning burst), stays high, then
drops off.  The stream carries an auto-scaling policy, so Pravega splits
segments under load and merges them back when the burst ends — no
operator intervention, which no other messaging system offers (§5.8).

Run with:  python examples/iot_autoscaling.py
"""

from repro.pravega import (
    PravegaCluster,
    PravegaClusterConfig,
    ScalingPolicy,
    StreamConfiguration,
)
from repro.sim import Simulator

EVENT_SIZE = 1_000  # one telemetry reading
TARGET_PER_SEGMENT = 1_000  # events/s per segment before splitting


def main() -> None:
    sim = Simulator()
    cluster = PravegaCluster.build(sim, PravegaClusterConfig(lts_kind="efs"))
    sim.run_until_complete(cluster.start())

    controller = cluster.controller_client("gateway")
    sim.run_until_complete(controller.create_scope("iot"))
    sim.run_until_complete(
        controller.create_stream(
            "iot",
            "telemetry",
            StreamConfiguration(
                scaling=ScalingPolicy.by_event_rate(
                    TARGET_PER_SEGMENT, scale_factor=2, min_segments=1
                )
            ),
        )
    )
    writer = cluster.create_writer("gateway", "iot", "telemetry")

    # Load profile: ramp 1k -> 8k events/s, hold, then drop to 200 e/s.
    phases = [
        ("ramp-up ", 30.0, 8_000.0),
        ("plateau ", 30.0, 8_000.0),
        ("night   ", 60.0, 200.0),
    ]

    def load():
        carry = 0.0
        for name, seconds, rate in phases:
            end = sim.now + seconds
            while sim.now < end:
                yield sim.timeout(0.02)
                carry += rate * 0.02
                count = int(carry)
                carry -= count
                if count:
                    writer.write_synthetic_events(count, EVENT_SIZE)

    def monitor():
        while True:
            yield sim.timeout(10.0)
            segments = controller.controller.get_active_segments("iot", "telemetry")
            print(f"[{sim.now:6.1f} s] active segments: {len(segments)}")

    sim.process(load())
    sim.process(monitor())
    total = sum(seconds for _, seconds, _ in phases)
    sim.run(until=total + 5)
    sim.run_until_complete(writer.flush(), timeout=60)

    print("\nscale events recorded by the controller:")
    for when, stream, kind, detail in cluster.controller.scale_events:
        print(f"  [{when:6.1f} s] {kind:10s} {detail}")

    ups = sum(1 for e in cluster.controller.scale_events if e[2] == "scale-up")
    downs = sum(1 for e in cluster.controller.scale_events if e[2] == "scale-down")
    final = len(cluster.controller.get_active_segments("iot", "telemetry"))
    print(
        f"\nsummary: {ups} scale-ups during the burst, {downs} scale-downs "
        f"after it; {final} segment(s) at the end"
    )
    assert ups >= 2, "the burst should have split the stream"
    assert downs >= 1, "the idle period should have merged segments back"


if __name__ == "__main__":
    main()
