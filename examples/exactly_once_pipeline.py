"""Exactly-once delivery through failures (§3.2, §4.4).

A payment event pipeline must never duplicate or drop events, even when
a segment store crashes mid-stream.  This example:

  1. writes numbered events while a segment store is crashed and its
     containers fail over to the survivors (WAL fencing + recovery);
  2. shows the writer's reconnect handshake resuming from the last
     persisted event number (segment attributes);
  3. reads everything back and verifies each event appears exactly once,
     in per-key order.

Run with:  python examples/exactly_once_pipeline.py
"""

from repro.pravega import PravegaCluster, PravegaClusterConfig
from repro.sim import Simulator

EVENTS = 200


def main() -> None:
    sim = Simulator()
    cluster = PravegaCluster.build(sim, PravegaClusterConfig(lts_kind="efs"))
    sim.run_until_complete(cluster.start())
    controller = cluster.controller_client("payments")
    sim.run_until_complete(controller.create_scope("bank"))
    sim.run_until_complete(controller.create_stream("bank", "payments"))

    writer = cluster.create_writer("payments", "bank", "payments")

    def produce():
        for i in range(EVENTS):
            writer.write_event(
                f"payment:{i:05d}".encode(), routing_key=f"account-{i % 3}"
            )
            yield sim.timeout(0.002)

    producer = sim.process(produce())

    # Crash the store owning the stream segment mid-run.
    victim = cluster.store_cluster.store_for_segment("bank/payments/0").name

    def chaos():
        yield sim.timeout(0.1)
        print(f"[{sim.now:5.2f} s] CRASH: segment store {victim} fails "
              f"(its containers fence + recover on the survivors)")
        yield cluster.store_cluster.fail_store(victim)
        new_owner = cluster.store_cluster.store_for_segment("bank/payments/0").name
        print(f"[{sim.now:5.2f} s] segment now served by {new_owner}")

    sim.process(chaos())
    sim.run_until_complete(producer, timeout=120)
    sim.run_until_complete(writer.flush(), timeout=120)
    print(f"[{sim.now:5.2f} s] writer finished: {writer.events_written} events "
          f"acknowledged (writer id {writer.writer_id!r} deduped on reconnect)")

    # Verify exactly-once + order.
    group = sim.run_until_complete(
        cluster.create_reader_group("audit", "audit", "bank", "payments")
    )
    reader = cluster.create_reader("audit", "auditor", group)
    sim.run_until_complete(reader.join())
    events = []
    while len(events) < EVENTS:
        batch = sim.run_until_complete(reader.read_next(), timeout=120)
        events.extend(e.decode() for e in batch.events)

    numbers = sorted(int(e.split(":")[1]) for e in events)
    assert numbers == list(range(EVENTS)), "lost or duplicated events!"
    print(f"[{sim.now:5.2f} s] audit: {len(events)} events, "
          f"{len(set(events))} distinct — exactly once, despite the crash")

    by_key = {}
    for event in events:
        n = int(event.split(":")[1])
        by_key.setdefault(n % 3, []).append(n)
    assert all(v == sorted(v) for v in by_key.values())
    print("          per-account ordering verified")


if __name__ == "__main__":
    main()
