"""Durability need not cost performance (§5.2, Fig. 5 in miniature).

Compares the write path of four configurations at the same offered load:

  * Pravega with durability (default): acks only after the Bookkeeper
    journal fsync — yet group commit keeps latency low;
  * Pravega without journal flushing: barely faster (which is why
    durability is the default);
  * Kafka without fsync (its default): data is acknowledged from the
    page cache and can be lost on correlated failures;
  * Kafka with flush.messages=1: durable, but the per-append fsync
    barrier devastates the write path.

Run with:  python examples/durability_comparison.py
"""

from repro.bench import (
    KafkaAdapter,
    PravegaAdapter,
    Table,
    WorkloadSpec,
    fmt_latency,
    fmt_rate,
    run_workload,
)
from repro.sim import Simulator

RATE = 100_000  # events/s
VARIANTS = [
    ("Pravega (durable, default)", lambda sim: PravegaAdapter(sim, journal_sync=True)),
    ("Pravega (no flush)", lambda sim: PravegaAdapter(sim, journal_sync=False)),
    ("Kafka (no flush, default)", lambda sim: KafkaAdapter(sim)),
    ("Kafka (flush.messages=1)", lambda sim: KafkaAdapter(sim, flush_every_message=True)),
]


def main() -> None:
    table = Table(
        ["configuration", "durable?", "achieved", "write p50", "write p95"],
        title=f"Write path at {RATE:,} events/s (100B events, 1 writer, 16 partitions)",
    )
    durable = {0: "yes", 1: "no", 2: "NO", 3: "yes"}
    for i, (label, make) in enumerate(VARIANTS):
        sim = Simulator()
        adapter = make(sim)
        spec = WorkloadSpec(
            event_size=100,
            target_rate=RATE,
            partitions=16,
            producers=1,
            duration=3.0,
            warmup=1.0,
        )
        result = run_workload(sim, adapter, spec)
        table.add(
            label,
            durable[i],
            fmt_rate(result.produce_rate),
            fmt_latency(result.write_latency.p50),
            fmt_latency(result.write_latency.p95),
        )
    table.show()
    print(
        "Takeaway (the paper's §5.2): Pravega provides durability by default\n"
        "at page-cache-like latency, because the Bookkeeper journal group-\n"
        "commits appends; Kafka must choose between speed and durability."
    )


if __name__ == "__main__":
    main()
