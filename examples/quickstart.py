"""Quickstart: write events to a Pravega stream and read them back.

Demonstrates the core public API:
  * build a simulated cluster (Table 1 topology: 3 segment stores with
    colocated bookies, a controller, EFS-model long-term storage);
  * create a scope and a stream with 4 parallel segments;
  * write events with routing keys (per-key order guaranteed);
  * read them back through a reader group.

Run with:  python examples/quickstart.py
"""

from repro.pravega import (
    PravegaCluster,
    PravegaClusterConfig,
    ScalingPolicy,
    StreamConfiguration,
)
from repro.sim import Simulator


def main() -> None:
    # Everything runs on simulated time: the simulator is the event loop.
    sim = Simulator()
    cluster = PravegaCluster.build(sim, PravegaClusterConfig(lts_kind="efs"))
    sim.run_until_complete(cluster.start())
    print(f"[{sim.now * 1e3:7.2f} ms] cluster is up: "
          f"{len(cluster.stores)} segment stores, "
          f"{cluster.config.num_containers} segment containers")

    # Create a stream with 4 parallel segments.
    controller = cluster.controller_client("app-host")
    sim.run_until_complete(controller.create_scope("examples"))
    sim.run_until_complete(
        controller.create_stream(
            "examples",
            "greetings",
            StreamConfiguration(scaling=ScalingPolicy.fixed(4)),
        )
    )
    segments = sim.run_until_complete(
        controller.get_active_segments("examples", "greetings")
    )
    print(f"[{sim.now * 1e3:7.2f} ms] stream created with segments:")
    for location in segments:
        print(
            f"    segment {location.segment_number}: key range "
            f"[{location.key_range.low:.2f}, {location.key_range.high:.2f}) "
            f"on {location.store_host}"
        )

    # Write events; same routing key -> same segment -> strict order.
    writer = cluster.create_writer("app-host", "examples", "greetings")
    for i in range(20):
        sensor = f"sensor-{i % 5}"
        writer.write_event(f"reading {i} from {sensor}".encode(), routing_key=sensor)
    sim.run_until_complete(writer.flush())
    print(f"[{sim.now * 1e3:7.2f} ms] wrote {writer.events_written} events "
          f"({writer.bytes_written} bytes, durable on 2/3 replicas)")

    # Read everything back through a reader group.
    group = sim.run_until_complete(
        cluster.create_reader_group("app-host", "quickstart", "examples", "greetings")
    )
    reader = cluster.create_reader("app-host", "reader-1", group)
    sim.run_until_complete(reader.join())
    events = []
    while len(events) < 20:
        batch = sim.run_until_complete(reader.read_next())
        events.extend(batch.events)
    print(f"[{sim.now * 1e3:7.2f} ms] read {len(events)} events; first three:")
    for event in events[:3]:
        print(f"    {event.decode()}")

    # Per-key order check.
    by_sensor = {}
    for event in events:
        text = event.decode()
        sensor = text.rsplit(" ", 1)[1]
        by_sensor.setdefault(sensor, []).append(int(text.split(" ")[1]))
    assert all(v == sorted(v) for v in by_sensor.values())
    print("per-routing-key order verified for all sensors")


if __name__ == "__main__":
    main()
